package dsm

import "sync"

// page is one shared page. The home copy (master) lives here; remote nodes
// hold cached copies in their own cache. The version counter increments on
// every modification of the master (a home write set or an applied diff),
// letting write-notice receivers decide whether their cached copy is
// actually stale.
type page struct {
	id   int
	home int

	mu      sync.Mutex
	master  []byte
	version uint64
	// writerEpoch tracks who wrote the page since the last barrier:
	// noWriter, a node id, or multiWriter. The home-migration option uses
	// it to move a page's home to its single remote writer.
	writerEpoch int
	// recent keeps the last few master modifications as diffs, so the
	// write-update protocol can patch stale copies instead of refetching
	// whole pages. Entry k carries the diff that took the master from
	// version v−1 to v.
	recent []versionedDiff
	// lastSeq records, per remote writer, the highest diff sequence
	// number applied — the home side of at-least-once-with-dedup
	// delivery. A diff arriving with a sequence number at or below the
	// recorded one is a duplicate and is dropped. Lazily allocated.
	lastSeq map[int]uint64
}

// versionedDiff is one retained master modification.
type versionedDiff struct {
	version uint64
	d       diff
}

// maxRecentDiffs bounds the per-page update history; a copy staler than
// this falls back to a full fetch.
const maxRecentDiffs = 8

// recordDiff appends a retained diff. Caller holds p.mu.
func (p *page) recordDiff(v uint64, d diff) {
	if len(p.recent) >= maxRecentDiffs {
		copy(p.recent, p.recent[1:])
		p.recent = p.recent[:len(p.recent)-1]
	}
	p.recent = append(p.recent, versionedDiff{version: v, d: d})
}

// diffsSince returns the retained diffs covering (from, current] and true,
// or false when the history no longer reaches back to from.
func (p *page) diffsSince(from uint64) ([]versionedDiff, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if from == p.version {
		return nil, true
	}
	idx := -1
	for i, vd := range p.recent {
		if vd.version == from+1 {
			idx = i
			break
		}
	}
	if idx < 0 {
		return nil, false
	}
	out := make([]versionedDiff, len(p.recent)-idx)
	copy(out, p.recent[idx:])
	return out, out[len(out)-1].version == p.version
}

const (
	noWriter    = -1
	multiWriter = -2
)

func newPage(id, home, size int) *page {
	return &page{id: id, home: home, master: make([]byte, size), writerEpoch: noWriter}
}

// noteWriter records a writer for the current barrier epoch. Caller holds
// p.mu.
func (p *page) noteWriter(w int) {
	switch p.writerEpoch {
	case noWriter:
		p.writerEpoch = w
	case w, multiWriter:
	default:
		p.writerEpoch = multiWriter
	}
}

// snapshot copies the master into a fresh buffer and returns it with the
// current version (a remote fetch).
func (p *page) snapshot() ([]byte, uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]byte, len(p.master))
	copy(out, p.master)
	return out, p.version
}

// readMaster copies master[off:off+len(buf)] into buf (a home read).
func (p *page) readMaster(off int, buf []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	copy(buf, p.master[off:off+len(buf)])
}

// writeMaster writes data at off in the master (a home write by writer)
// and bumps the version.
func (p *page) writeMaster(off int, data []byte, writer int) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	copy(p.master[off:off+len(data)], data)
	p.version++
	p.noteWriter(writer)
	run := make([]byte, len(data))
	copy(run, data)
	p.recordDiff(p.version, diff{page: p.id, runs: []diffRun{{off: off, data: run}}})
	return p.version
}

// applyDiff merges a diff produced by remote writer into the master — the
// home side of the multiple-writer protocol. seq is the writer's
// per-page diff sequence number; a duplicate (seq at or below the last
// one applied for this writer) leaves the master untouched and reports
// applied=false. seq 0 bypasses deduplication (callers that do not
// number their diffs). It returns the current version and whether the
// diff was applied.
func (p *page) applyDiff(d diff, writer int, seq uint64) (version uint64, applied bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if seq != 0 {
		if p.lastSeq == nil {
			p.lastSeq = make(map[int]uint64)
		}
		if seq <= p.lastSeq[writer] {
			return p.version, false
		}
		p.lastSeq[writer] = seq
	}
	for _, run := range d.runs {
		copy(p.master[run.off:run.off+len(run.data)], run.data)
	}
	p.version++
	p.noteWriter(writer)
	p.recordDiff(p.version, d)
	return p.version, true
}

// diff is the set of byte runs by which a cached copy departs from its
// twin. Only the modified runs travel to the home node, which is what
// makes concurrent writers to disjoint parts of one page mergeable.
type diff struct {
	page int
	runs []diffRun
}

type diffRun struct {
	off  int
	data []byte
}

// diffHeaderBytes approximates the wire overhead of one run descriptor.
const diffHeaderBytes = 8

// wireSize is the number of bytes the diff occupies in a message.
func (d diff) wireSize() int {
	n := diffHeaderBytes // page id + run count
	for _, r := range d.runs {
		n += diffHeaderBytes + len(r.data)
	}
	return n
}

// empty reports whether the diff carries no modifications.
func (d diff) empty() bool { return len(d.runs) == 0 }

// makeDiff scans current against twin and collects the differing runs.
// Adjacent differing bytes coalesce into one run; gaps of up to
// coalesceGap equal bytes are absorbed to keep run counts (and therefore
// header overhead) low, as real diff encodings do.
func makeDiff(pageID int, twin, current []byte) diff {
	const coalesceGap = 8
	d := diff{page: pageID}
	i := 0
	for i < len(current) {
		if current[i] == twin[i] {
			i++
			continue
		}
		start := i
		last := i // last differing byte seen
		i++
		for i < len(current) {
			if current[i] != twin[i] {
				last = i
				i++
				continue
			}
			// A run of equal bytes: absorb if short, stop otherwise.
			j := i
			for j < len(current) && j-last <= coalesceGap && current[j] == twin[j] {
				j++
			}
			if j-last > coalesceGap || j == len(current) {
				break
			}
			i = j
		}
		run := make([]byte, last-start+1)
		copy(run, current[start:last+1])
		d.runs = append(d.runs, diffRun{off: start, data: run})
		i = last + 1
	}
	return d
}
