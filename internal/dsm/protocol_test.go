package dsm

import (
	"fmt"
	"testing"

	"genomedsm/internal/cluster"
)

// producerConsumer runs a one-writer/one-reader workload across several
// lock-synchronized rounds and returns the system.
func producerConsumer(t *testing.T, protocol Protocol, rounds int) *System {
	t.Helper()
	cfg := cluster.Calibrated2005()
	sys, err := NewSystem(2, cfg, Options{Protocol: protocol})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AllocAt(cfg.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(func(n *Node) error {
		var b [1]byte
		for e := 0; e < rounds; e++ {
			if n.ID() == 0 {
				if err := n.WithLock(0, func() error {
					return n.WriteAt(r, 7, []byte{byte(e + 1)})
				}); err != nil {
					return err
				}
				if err := n.Setcv(0); err != nil {
					return err
				}
				if err := n.Waitcv(1); err != nil {
					return err
				}
			} else {
				if err := n.Waitcv(0); err != nil {
					return err
				}
				if err := n.WithLock(0, func() error {
					return n.ReadAt(r, 7, b[:])
				}); err != nil {
					return err
				}
				if b[0] != byte(e+1) {
					return fmt.Errorf("round %d read %d", e, b[0])
				}
				if err := n.Setcv(1); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestWriteUpdatePatchesInsteadOfRefetching(t *testing.T) {
	const rounds = 6
	inv := producerConsumer(t, WriteInvalidate, rounds).TotalStats()
	upd := producerConsumer(t, WriteUpdate, rounds).TotalStats()

	// Invalidate: the reader refetches the page every round.
	if inv.PageFetches < rounds {
		t.Errorf("invalidate fetched %d pages, want >= %d", inv.PageFetches, rounds)
	}
	if inv.Updates != 0 {
		t.Errorf("invalidate applied %d updates", inv.Updates)
	}
	// Update: one initial fetch, then diffs patch the copy in place.
	if upd.PageFetches != 1 {
		t.Errorf("update fetched %d pages, want 1", upd.PageFetches)
	}
	if upd.Updates < rounds-1 {
		t.Errorf("update applied %d patches, want >= %d", upd.Updates, rounds-1)
	}
	// For a single hot byte, patching moves far fewer bytes than page
	// refetches.
	if upd.BytesMoved >= inv.BytesMoved {
		t.Errorf("update moved %d bytes, invalidate %d; update should be cheaper here",
			upd.BytesMoved, inv.BytesMoved)
	}
}

func TestWriteUpdateFallsBackWhenHistoryTooShort(t *testing.T) {
	// The writer produces more versions between the reader's syncs than
	// the retained history holds; the reader must fall back to a fetch
	// and still observe the latest value.
	cfg := cluster.Zero()
	sys, err := NewSystem(2, cfg, Options{Protocol: WriteUpdate})
	if err != nil {
		t.Fatal(err)
	}
	r, err := sys.AllocAt(cfg.PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}
	const writes = maxRecentDiffs + 4
	burstDone := make(chan struct{})
	err = sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			if err := n.WithLock(0, func() error { return n.WriteAt(r, 0, []byte{1}) }); err != nil {
				return err
			}
			if err := n.Setcv(0); err != nil {
				return err
			}
			if err := n.Waitcv(1); err != nil {
				return err
			}
			// Burst of writes, each bumping the version.
			err := n.WithLock(0, func() error {
				for k := 0; k < writes; k++ {
					if err := n.WriteAt(r, k, []byte{byte(k + 1)}); err != nil {
						return err
					}
				}
				return nil
			})
			close(burstDone)
			return err
		}
		if err := n.Waitcv(0); err != nil {
			return err
		}
		var b [1]byte
		if err := n.WithLock(0, func() error { return n.ReadAt(r, 0, b[:]) }); err != nil {
			return err
		}
		if err := n.Setcv(1); err != nil {
			return err
		}
		// Native ordering: wait until the writer finished its burst, then
		// synchronize through the lock so the notices arrive.
		<-burstDone
		if err := n.WithLock(0, func() error { return n.ReadAt(r, writes-1, b[:]) }); err != nil {
			return err
		}
		if b[0] != byte(writes) {
			return fmt.Errorf("read %d after burst, want %d", b[0], writes)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if st.Invalidations == 0 {
		t.Error("expected an invalidation fallback when the diff history is exceeded")
	}
}

func TestProtocolString(t *testing.T) {
	if WriteInvalidate.String() != "write-invalidate" || WriteUpdate.String() != "write-update" {
		t.Error("protocol names wrong")
	}
	if Protocol(9).String() == "" {
		t.Error("unknown protocol empty")
	}
}

// TestWavefrontResultsUnchangedUnderWriteUpdate: the coherence protocol
// must never change results, only costs.
func TestWavefrontResultsUnchangedUnderWriteUpdate(t *testing.T) {
	cfg := cluster.Zero()
	for _, proto := range []Protocol{WriteInvalidate, WriteUpdate} {
		sys, err := NewSystem(4, cfg, Options{Protocol: proto})
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Alloc(3*cfg.PageSize, 0)
		if err != nil {
			t.Fatal(err)
		}
		err = sys.Run(func(n *Node) error {
			for round := 0; round < 5; round++ {
				off := (n.ID()*5 + round) * 16
				if err := n.WriteAt(r, off, []byte{byte(n.ID()), byte(round)}); err != nil {
					return err
				}
				if err := n.Barrier(); err != nil {
					return err
				}
				// Everyone verifies everyone's writes so far.
				var b [2]byte
				for id := 0; id < 4; id++ {
					if err := n.ReadAt(r, (id*5+round)*16, b[:]); err != nil {
						return err
					}
					if b[0] != byte(id) || b[1] != byte(round) {
						return fmt.Errorf("%s: node %d round %d sees %v from node %d",
							proto, n.ID(), round, b, id)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}
