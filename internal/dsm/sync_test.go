package dsm

import (
	"fmt"
	"sync"
	"testing"

	"genomedsm/internal/cluster"
)

// queueLen inspects a lock's waiter-queue length (test-only; same
// package).
func queueLen(sys *System, lock int) int {
	lv := sys.locks[lock]
	lv.mu.Lock()
	defer lv.mu.Unlock()
	return len(lv.queue)
}

// TestLockGrantsAreFIFO: waiters receive the lock in arrival order. Node
// 0 holds the lock while nodes 1..N−1 enqueue strictly in id order (each
// waits until the previous one is visibly queued); the grant order after
// the release must match.
func TestLockGrantsAreFIFO(t *testing.T) {
	const nprocs = 6
	sys := newTestSystem(t, nprocs, Options{})
	var order []int
	var mu sync.Mutex
	held := make(chan struct{})
	err := sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			if err := n.Acquire(0); err != nil {
				return err
			}
			close(held)
			for queueLen(sys, 0) < nprocs-1 {
			}
			return n.Release(0)
		}
		<-held
		// Enqueue in id order: wait until the id−1 previous waiters are
		// visibly queued.
		for queueLen(sys, 0) < n.ID()-1 {
		}
		if err := n.Acquire(0); err != nil {
			return err
		}
		mu.Lock()
		order = append(order, n.ID())
		mu.Unlock()
		return n.Release(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != nprocs-1 {
		t.Fatalf("recorded %d grants", len(order))
	}
	for i := range order {
		if order[i] != i+1 {
			t.Fatalf("grants out of FIFO order: %v", order)
		}
	}
}

// TestIndependentLocksDoNotSerializeTime: two nodes using different locks
// must not wait on each other's critical sections (virtual-time check).
func TestIndependentLocksDoNotSerializeTime(t *testing.T) {
	cfg := cluster.Zero()
	cfg.CellTime = 1e-6
	sys, err := NewSystem(2, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(func(n *Node) error {
		lock := n.ID() // node 0 uses lock 0, node 1 uses lock 1
		for i := 0; i < 10; i++ {
			if err := n.Acquire(lock); err != nil {
				return err
			}
			n.Compute(1000) // 1 ms inside the critical section
			if err := n.Release(lock); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		b := sys.Node(i).Clock().Breakdown()
		if b.Cat[cluster.LockCV] > 1e-4 {
			t.Errorf("node %d waited %.6fs on an uncontended lock", i, b.Cat[cluster.LockCV])
		}
		if b.Total < 10e-3 {
			t.Errorf("node %d total %.6fs, want >= 10ms of compute", i, b.Total)
		}
	}
}

// TestCVEachSignalWakesOneWaiter: N pending signals satisfy exactly N
// waits, no more.
func TestCVEachSignalWakesOneWaiter(t *testing.T) {
	const nprocs = 4
	sys := newTestSystem(t, nprocs, Options{})
	err := sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			// Three signals for three waiters.
			for i := 0; i < nprocs-1; i++ {
				if err := n.Setcv(0); err != nil {
					return err
				}
			}
			return n.Barrier()
		}
		if err := n.Waitcv(0); err != nil {
			return err
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.TotalStats()
	if st.CVSignals != nprocs-1 || st.CVWaits != nprocs-1 {
		t.Errorf("signals %d waits %d", st.CVSignals, st.CVWaits)
	}
}

// TestBarrierAcrossRuns: barrier state resets correctly between SPMD
// phases on the same system.
func TestBarrierAcrossRuns(t *testing.T) {
	sys := newTestSystem(t, 3, Options{})
	for phase := 0; phase < 4; phase++ {
		err := sys.Run(func(n *Node) error {
			if err := n.Barrier(); err != nil {
				return err
			}
			return n.Barrier()
		})
		if err != nil {
			t.Fatalf("phase %d: %v", phase, err)
		}
	}
	if st := sys.TotalStats(); st.Barriers != 3*2*4 {
		t.Errorf("barrier count %d, want 24", st.Barriers)
	}
}

// TestSequencesWithNThroughTheDSMPipeline: N bases must flow through the
// typed accessors and kernels without tripping validation.
func TestSequencesWithNThroughTheDSMPipeline(t *testing.T) {
	sys := newTestSystem(t, 2, Options{})
	r, _ := sys.AllocAt(4096, 0)
	err := sys.Run(func(n *Node) error {
		if n.ID() == 0 {
			if err := n.WriteAt(r, 0, []byte("ACGTN")); err != nil {
				return err
			}
		}
		if err := n.Barrier(); err != nil {
			return err
		}
		buf := make([]byte, 5)
		if err := n.ReadAt(r, 0, buf); err != nil {
			return err
		}
		if string(buf) != "ACGTN" {
			return fmt.Errorf("read %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
