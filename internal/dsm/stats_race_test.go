package dsm

import (
	"sync"
	"sync/atomic"
	"testing"

	"genomedsm/internal/cluster"
)

// TestStatsConcurrentPolling hammers Node.Stats and System.TotalStats
// from monitor goroutines while the nodes generate protocol traffic.
// Before the counters moved to atomic adds/loads this was a data race
// (the monitoring use case the Stats doc promises); run under -race this
// test is the regression guard.
func TestStatsConcurrentPolling(t *testing.T) {
	const nprocs = 4
	sys, err := NewSystem(nprocs, cluster.Calibrated2005(), Options{CacheSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	region, err := sys.Alloc(8*cluster.Calibrated2005().PageSize, 0)
	if err != nil {
		t.Fatal(err)
	}

	var stop atomic.Bool
	var monitors sync.WaitGroup
	for m := 0; m < 3; m++ {
		monitors.Add(1)
		go func(m int) {
			defer monitors.Done()
			for !stop.Load() {
				_ = sys.TotalStats()
				for i := 0; i < nprocs; i++ {
					_ = sys.Node(i).Stats()
				}
			}
		}(m)
	}

	err = sys.Run(func(n *Node) error {
		buf := make([]byte, 64)
		for iter := 0; iter < 40; iter++ {
			if err := n.Acquire(0); err != nil {
				return err
			}
			off := ((iter*nprocs + n.ID()) * 64) % (region.Size() - 64)
			for i := range buf {
				buf[i] = byte(iter + n.ID())
			}
			if err := n.WriteAt(region, off, buf); err != nil {
				return err
			}
			if err := n.Release(0); err != nil {
				return err
			}
			if err := n.ReadAt(region, (off+64)%(region.Size()-64), buf); err != nil {
				return err
			}
			if iter%8 == 7 {
				if err := n.Barrier(); err != nil {
					return err
				}
			}
		}
		return n.Barrier()
	})
	stop.Store(true)
	monitors.Wait()
	if err != nil {
		t.Fatal(err)
	}

	total := sys.TotalStats()
	if total.LockAcquires == 0 || total.Barriers == 0 || total.PageFetches == 0 {
		t.Fatalf("traffic not generated: %s", total.String())
	}
	// The aggregate must equal the sum of the per-node snapshots.
	var sum Stats
	for i := 0; i < nprocs; i++ {
		s := sys.Node(i).Stats()
		sum.add(s)
	}
	sum.Migrations = total.Migrations
	if sum != total {
		t.Fatalf("TotalStats %v != sum of node stats %v", total, sum)
	}
}
