package dsm

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"genomedsm/internal/cluster"
)

func TestMakeDiffRoundTrip(t *testing.T) {
	f := func(seed int64, nEdits uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		twin := make([]byte, 512)
		rng.Read(twin)
		current := make([]byte, 512)
		copy(current, twin)
		for e := 0; e < int(nEdits%32); e++ {
			current[rng.Intn(len(current))] = byte(rng.Int())
		}
		d := makeDiff(7, twin, current)
		// Applying the diff to a copy of the twin must reproduce current.
		p := newPage(7, 0, 512)
		copy(p.master, twin)
		p.applyDiff(d, 1, 0)
		return bytes.Equal(p.master, current)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMakeDiffEmpty(t *testing.T) {
	twin := make([]byte, 64)
	current := make([]byte, 64)
	d := makeDiff(0, twin, current)
	if !d.empty() {
		t.Errorf("diff of identical buffers not empty: %d runs", len(d.runs))
	}
	if d.wireSize() != diffHeaderBytes {
		t.Errorf("empty diff wire size %d", d.wireSize())
	}
}

func TestMakeDiffCoalesces(t *testing.T) {
	twin := make([]byte, 256)
	current := make([]byte, 256)
	copy(current, twin)
	// Two edits 4 bytes apart must coalesce into one run (gap <= 8)…
	current[10] = 1
	current[14] = 1
	d := makeDiff(0, twin, current)
	if len(d.runs) != 1 {
		t.Errorf("near edits produced %d runs, want 1", len(d.runs))
	}
	// …while edits 50 bytes apart must stay separate.
	current[100] = 1
	d = makeDiff(0, twin, current)
	if len(d.runs) != 2 {
		t.Errorf("far edits produced %d runs, want 2", len(d.runs))
	}
}

func TestMakeDiffFullPage(t *testing.T) {
	twin := make([]byte, 128)
	current := bytes.Repeat([]byte{9}, 128)
	d := makeDiff(0, twin, current)
	if len(d.runs) != 1 || len(d.runs[0].data) != 128 {
		t.Errorf("full rewrite diff: %d runs", len(d.runs))
	}
	if d.wireSize() <= 128 {
		t.Errorf("wire size %d must include headers", d.wireSize())
	}
}

func TestCacheReplacement(t *testing.T) {
	// Node 1 touches more remote pages than its cache holds; evictions
	// must flush dirty pages so nothing is lost.
	cfg := cluster.Zero()
	sys, err := NewSystem(2, cfg, Options{CacheSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	const pages = 6
	r, _ := sys.AllocAt(pages*cfg.PageSize, 0) // all homed at node 0
	err = sys.Run(func(n *Node) error {
		if n.ID() != 1 {
			return n.Barrier()
		}
		for k := 0; k < pages; k++ {
			if err := n.WriteAt(r, k*cfg.PageSize, []byte{byte(k + 1)}); err != nil {
				return err
			}
		}
		return n.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	st := sys.Node(1).Stats()
	if st.Evictions != pages-2 {
		t.Errorf("evictions %d, want %d", st.Evictions, pages-2)
	}
	// All writes must have reached the home, through evictions or the
	// barrier flush.
	err = sys.Run(func(n *Node) error {
		if n.ID() != 0 {
			return nil
		}
		for k := 0; k < pages; k++ {
			var b [1]byte
			if err := n.ReadAt(r, k*cfg.PageSize, b[:]); err != nil {
				return err
			}
			if b[0] != byte(k+1) {
				return fmt.Errorf("page %d lost its write: %d", k, b[0])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentDisjointWritesProperty is the randomized multi-writer
// check: nodes write random disjoint slices of a shared region without
// locks, barrier, and the region must equal the sequential composition.
func TestConcurrentDisjointWritesProperty(t *testing.T) {
	f := func(seed int64) bool {
		const nprocs = 4
		rng := rand.New(rand.NewSource(seed))
		sys, err := NewSystem(nprocs, cluster.Zero(), Options{})
		if err != nil {
			return false
		}
		size := 2*4096 + rng.Intn(4096)
		r, err := sys.Alloc(size, rng.Intn(nprocs))
		if err != nil {
			return false
		}
		want := make([]byte, size)
		// Pre-compute each node's disjoint stripe writes.
		type edit struct {
			off  int
			data []byte
		}
		edits := make([][]edit, nprocs)
		stripe := size / nprocs
		for id := 0; id < nprocs; id++ {
			base := id * stripe
			for e := 0; e < 16; e++ {
				off := base + rng.Intn(stripe-8)
				data := make([]byte, 1+rng.Intn(7))
				rng.Read(data)
				edits[id] = append(edits[id], edit{off, data})
				copy(want[off:], data)
			}
		}
		err = sys.Run(func(n *Node) error {
			for _, e := range edits[n.ID()] {
				if err := n.WriteAt(r, e.off, e.data); err != nil {
					return err
				}
			}
			return n.Barrier()
		})
		if err != nil {
			return false
		}
		ok := true
		err = sys.Run(func(n *Node) error {
			if n.ID() != 0 {
				return nil
			}
			got := make([]byte, size)
			if err := n.ReadAt(r, 0, got); err != nil {
				return err
			}
			ok = bytes.Equal(got, want)
			return nil
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTypedAccessors(t *testing.T) {
	sys := newTestSystem(t, 1, Options{})
	r, _ := sys.Alloc(4096, 0)
	err := sys.Run(func(n *Node) error {
		vals := []int32{-1, 0, 1 << 30, -(1 << 30)}
		if err := n.WriteInt32s(r, 100, vals); err != nil {
			return err
		}
		got := make([]int32, len(vals))
		if err := n.ReadInt32s(r, 100, got); err != nil {
			return err
		}
		for i := range vals {
			if got[i] != vals[i] {
				return fmt.Errorf("int32 %d: got %d want %d", i, got[i], vals[i])
			}
		}
		if err := n.WriteInt64(r, 200, -12345678901234); err != nil {
			return err
		}
		v, err := n.ReadInt64(r, 200)
		if err != nil {
			return err
		}
		if v != -12345678901234 {
			return fmt.Errorf("int64 round trip: %d", v)
		}
		if err := n.WriteInt32s(r, 4095, []int32{1}); err == nil {
			return fmt.Errorf("overflowing typed write accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMakespanAndBreakdowns(t *testing.T) {
	cfg := cluster.Zero()
	cfg.CellTime = 1e-6
	sys, err := NewSystem(2, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(func(n *Node) error {
		n.Compute(int64(1000 * (n.ID() + 1)))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if m := sys.Makespan(); m < 2e-3-1e-9 || m > 2e-3+1e-9 {
		t.Errorf("makespan %g, want 2ms", m)
	}
	bs := sys.Breakdowns()
	if len(bs) != 2 || bs[0].Cat[cluster.Compute] >= bs[1].Cat[cluster.Compute] {
		t.Errorf("breakdowns wrong: %+v", bs)
	}
}

func TestStatsString(t *testing.T) {
	s := Stats{PageFetches: 3, MsgsSent: 7}
	if got := s.String(); got == "" {
		t.Error("empty stats string")
	}
}
