// Package swar implements inter-sequence vectorized Smith–Waterman in
// pure Go via SWAR ("SIMD within a register"): one uint64 word carries
// the running scores of 8 int8 lanes (or 4 int16 lanes), each lane
// scanning a different target sequence against the same query. The
// style follows the inter-sequence vectorization of DSA (Xu et al.,
// arXiv:1701.01575) and SWAPHI (Liu & Schmidt, arXiv:1404.4152): because
// every lane is an independent pairwise comparison, the DP recurrence
// has no cross-lane dependencies and the scalar inner loop of
// align.Scan lifts to packed words unchanged.
//
// # Guard-bit arithmetic
//
// Local-alignment scores are never negative, so lanes hold unsigned
// magnitudes and the zero clamp max(0, ·) of the recurrence is the
// floor of a clamped subtract. Keeping each lane's *top bit free as a
// guard* (clean scores ≤ 127 per int8 lane, ≤ 32767 per int16 lane)
// buys two things:
//
//   - The diagonal term needs no saturating add: with the profile split
//     into non-negative match/mismatch magnitudes (bio.PackedProfile),
//     v = clamp(d − minus) + plus is exact and a *plain* word add — per
//     lane, exactly one of plus/minus is nonzero, lane sums stay below
//     256, and carries never cross a lane boundary.
//   - Subtracts of penalties p ≤ 127 use z = (x|hi) − p, which cannot
//     borrow across lanes because every byte of x|hi is ≥ 128 > p; the
//     guard bit of z doubles as the per-lane "did not underflow" flag
//     that implements the zero clamp.
//
// A lane whose value sets the guard bit may be about to overflow, so
// the kernel ORs every cell into a saturation accumulator; the first
// excess value is still computed exactly (sums stay within the lane),
// so a lane is either never flagged — and bit-exact against the scalar
// kernel — or flagged and retried with the next wider layout:
// int8 → int16 → the exact scalar kernel (scalar.go). Wrapped garbage in a
// flagged lane stays inside that lane (no operation carries or borrows
// across lane boundaries for any input), so neighbours are unaffected.
// The chain makes Scores bit-exact against align.Scan by construction.
package swar

import (
	"genomedsm/internal/bio"
)

// Guard-bit masks of the two packed widths: the per-lane top bits.
const (
	hi8  = 0x8080808080808080
	hi16 = 0x8000800080008000
)

// SubClamp8 returns per byte max(0, x−y), the zero-clamped subtract of
// the local recurrence, for penalty lanes y ≤ 127. The result lane is
// exact when the x lane is clean (≤ 127) and always ≤ 127; no borrow
// ever crosses a lane boundary, for any x.
func SubClamp8(x, y uint64) uint64 {
	z := (x | hi8) - y
	m := ((z & hi8) >> 7) * 0xFF
	return (z &^ hi8) & m
}

// MaxClamped8 returns the per-byte unsigned maximum for y lanes ≤ 127
// and any x: a lane with the guard bit set always beats y, otherwise
// the guard bit of (x|hi)−y decides. Exact for every x ≤ 255, y ≤ 127.
func MaxClamped8(x, y uint64) uint64 {
	z := (x | hi8) - y
	m := (((x | z) & hi8) >> 7) * 0xFF
	return (x & m) | (y &^ m)
}

// SubClamp16 and MaxClamped16 are the 4-lane uint16 variants, with the
// penalty bound 32767.
func SubClamp16(x, y uint64) uint64 {
	z := (x | hi16) - y
	m := ((z & hi16) >> 15) * 0xFFFF
	return (z &^ hi16) & m
}

// MaxClamped16 is the 4-lane uint16 maximum for y lanes ≤ 32767.
func MaxClamped16(x, y uint64) uint64 {
	z := (x | hi16) - y
	m := (((x | z) & hi16) >> 15) * 0xFFFF
	return (x & m) | (y &^ m)
}

// row8 advances one packed row of the zero-clamped local recurrence for
// all 8 lanes at once — the SWAR lift of align.swRow: per word,
//
//	cur[j] = max(clamp(prev[j-1] − minus[j]) + plus[j],
//	             clamp(prev[j] − gap), clamp(cur[j-1] − gap))
//
// with the zero clamp implicit in the clamped subtracts. It folds the
// row into the running guard-stripped per-lane maximum and ORs every
// cell into the saturation accumulator sat; lanes that ever set their
// guard bit in sat are unreliable and must be retried wider.
func row8(prev, cur, plus, minus []uint64, gapV, best, sat uint64) (uint64, uint64) {
	n := len(plus)
	d := prev[0]   // diag carry: prev[j-1]
	w := uint64(0) // left carry: cur[j-1]; the border column is all zero
	pr := prev[1:]
	out := cur[1:]
	_ = pr[n-1] // bounds hints for the loop body
	_ = out[n-1]
	_ = minus[n-1]
	for j := 0; j < n; j++ {
		v := SubClamp8(d, minus[j]) + plus[j]
		d = pr[j]
		v = MaxClamped8(v, SubClamp8(d, gapV))
		v = MaxClamped8(v, SubClamp8(w, gapV))
		out[j] = v
		w = v
		sat |= v
		best = MaxClamped8(best, v&^hi8)
	}
	return best, sat
}

// row16 is row8 for 4 uint16 lanes.
func row16(prev, cur, plus, minus []uint64, gapV, best, sat uint64) (uint64, uint64) {
	n := len(plus)
	d := prev[0]
	w := uint64(0)
	pr := prev[1:]
	out := cur[1:]
	_ = pr[n-1]
	_ = out[n-1]
	_ = minus[n-1]
	for j := 0; j < n; j++ {
		v := SubClamp16(d, minus[j]) + plus[j]
		d = pr[j]
		v = MaxClamped16(v, SubClamp16(d, gapV))
		v = MaxClamped16(v, SubClamp16(w, gapV))
		out[j] = v
		w = v
		sat |= v
		best = MaxClamped16(best, v&^hi16)
	}
	return best, sat
}

// LaneScores is the outcome of one packed scan.
type LaneScores struct {
	// Scores holds the per-lane best local-alignment score; only the
	// first Lanes entries are meaningful, and a lane flagged in
	// Saturated must not be trusted.
	Scores [bio.PackedLanes8]int
	// Saturated is the bitmask of lanes that ever set their guard bit:
	// their true score may exceed the clean lane range.
	Saturated uint8
	// Lanes is the number of live lanes (= number of targets scanned).
	Lanes int
	// Rows is the number of query rows the scan consumed: the full query
	// length for a completed scan, fewer when a Bound abandoned it.
	Rows int
	// Pruned reports that a bounded scan was abandoned mid-matrix: every
	// lane's exact score is provably below the bound's Below threshold.
	// Scores are then meaningless and Saturated is always zero (saturated
	// lanes are never used as abandon evidence).
	Pruned bool
}

// Aligner carries the reusable packed row buffers of one worker. The
// zero value is ready to use; an Aligner must not be shared between
// goroutines.
type Aligner struct {
	prev, cur   []uint64 // inter-sequence packed rows (Scan8/Scan16)
	sprev, scur []uint64 // striped rows (StripedScan8/StripedScan16)
	schg        []uint64 // striped correction-loop change mask
}

// rows returns the two row buffers of length words+1, with prev cleared
// (the zero top border) — cur is fully overwritten row by row and its
// border cell cur[0] is never read (the left carry starts at the
// constant zero column instead).
func (a *Aligner) rows(words int) ([]uint64, []uint64) {
	if cap(a.prev) < words+1 {
		a.prev = make([]uint64, words+1)
		a.cur = make([]uint64, words+1)
	}
	a.prev = a.prev[:words+1]
	a.cur = a.cur[:words+1]
	clear(a.prev)
	a.cur[0] = 0
	return a.prev, a.cur
}

// scanPacked runs the packed recurrence of q against prof and returns
// the folded guard-stripped per-lane maximum and the saturation word.
// Under a non-nil Bound it additionally abandons the scan (see Bound)
// once no lane can still reach the threshold, reporting how many rows
// it consumed and whether it pruned.
func (a *Aligner) scanPacked(q bio.Sequence, prof *bio.PackedProfile, gap int, ab *Bound) (best, sat uint64, rows int, pruned bool) {
	words := prof.Words()
	if words == 0 || len(q) == 0 {
		return 0, 0, len(q), false
	}
	prev, cur := a.rows(words)
	gapV := prof.Broadcast(gap)
	wide := prof.Lanes() == bio.PackedLanes16
	satMask := uint64(hi8)
	if wide {
		satMask = hi16
	}
	every := ab.cadence()
	next := every
	for i := 0; i < len(q); i++ {
		c := q[i]
		if wide {
			best, sat = row16(prev, cur, prof.PlusRow(c), prof.MinusRow(c), gapV, best, sat)
		} else {
			best, sat = row8(prev, cur, prof.PlusRow(c), prof.MinusRow(c), gapV, best, sat)
		}
		prev, cur = cur, prev
		if next != 0 && i+1 == next {
			next += every
			// A saturated lane's running maximum is untrustworthy, so it
			// is never abandon evidence; the wider retry re-checks.
			if sat&satMask == 0 {
				m := reduce8(best)
				if wide {
					m = reduce16(best)
				}
				if m+ab.Query.SuffixBound(i+1) < ab.Below {
					a.prev, a.cur = prev, cur
					return best, sat, i + 1, true
				}
			}
		}
	}
	a.prev, a.cur = prev, cur
	return best, sat, len(q), false
}

// Scan8 scores q against up to 8 targets in int8 lanes. ok is false
// when the scoring magnitudes do not fit the 7-bit clean lane range
// (callers then use Scan16 or the scalar path); lanes that overflow it
// are flagged Saturated in the result.
func (a *Aligner) Scan8(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring) (LaneScores, bool) {
	if -sc.Gap > bio.PackedCap8 {
		return LaneScores{}, false
	}
	prof := bio.NewPackedProfile8(targets, sc)
	if prof == nil {
		return LaneScores{}, false
	}
	return a.finish(q, prof, sc, len(targets), nil), true
}

// Scan16 scores q against up to 4 targets in int16 lanes.
func (a *Aligner) Scan16(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring) (LaneScores, bool) {
	if -sc.Gap > bio.PackedCap16 {
		return LaneScores{}, false
	}
	prof := bio.NewPackedProfile16(targets, sc)
	if prof == nil {
		return LaneScores{}, false
	}
	return a.finish(q, prof, sc, len(targets), nil), true
}

func (a *Aligner) finish(q bio.Sequence, prof *bio.PackedProfile, sc bio.Scoring, lanes int, ab *Bound) LaneScores {
	best, sat, rows, pruned := a.scanPacked(q, prof, -sc.Gap, ab)
	res := LaneScores{Lanes: lanes, Rows: rows, Pruned: pruned}
	if pruned {
		return res
	}
	guard := uint64(1) << (uint(prof.Shift()) - 1)
	for l := 0; l < lanes; l++ {
		res.Scores[l] = prof.Lane(best, l)
		if prof.Lane(sat, l)&int(guard) != 0 {
			res.Saturated |= 1 << uint(l)
		}
	}
	return res
}

// Scores returns the exact best local-alignment score of q against
// every target, bit-exact against align.Scan. Targets are scanned in
// int8 lane groups of 8; lanes that overflow the 7-bit clean range (or
// scoring schemes that do not fit it) are retried in int16 groups of 4,
// and anything still overflowing falls back to the scalar kernel. The
// Aligner's buffers are reused across calls, so a long-lived worker
// allocates only per lane group (the packed profile).
func (a *Aligner) Scores(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring) ([]int, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	out := make([]int, len(targets))
	var narrow []int // target indices needing the int16 retry
	for lo := 0; lo < len(targets); lo += bio.PackedLanes8 {
		hi := min(lo+bio.PackedLanes8, len(targets))
		ls, ok := a.Scan8(q, targets[lo:hi], sc)
		if !ok {
			for i := lo; i < hi; i++ {
				narrow = append(narrow, i)
			}
			continue
		}
		for l := 0; l < ls.Lanes; l++ {
			if ls.Saturated&(1<<uint(l)) != 0 {
				narrow = append(narrow, lo+l)
			} else {
				out[lo+l] = ls.Scores[l]
			}
		}
	}
	var scalar []int // target indices needing the exact scalar kernel
	group := make([]bio.Sequence, 0, bio.PackedLanes16)
	for lo := 0; lo < len(narrow); lo += bio.PackedLanes16 {
		hi := min(lo+bio.PackedLanes16, len(narrow))
		group = group[:0]
		for _, idx := range narrow[lo:hi] {
			group = append(group, targets[idx])
		}
		ls, ok := a.Scan16(q, group, sc)
		if !ok {
			scalar = append(scalar, narrow[lo:hi]...)
			continue
		}
		for l := 0; l < ls.Lanes; l++ {
			if ls.Saturated&(1<<uint(l)) != 0 {
				scalar = append(scalar, narrow[lo+l])
			} else {
				out[narrow[lo+l]] = ls.Scores[l]
			}
		}
	}
	for _, idx := range scalar {
		out[idx] = scalarScore(q, targets[idx], sc)
	}
	return out, nil
}
