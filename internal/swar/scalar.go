package swar

import "genomedsm/internal/bio"

// scalarScore is the score-only scalar Smith–Waterman rung at the
// bottom of the fallback ladder: lanes that overflow even the int16
// clean range land here. It is the same profile-driven int32 row
// kernel as align.Scan (differential tests in swar_test pin the two
// against each other), kept package-local so align can itself import
// swar for the striped fast path without an import cycle.
func scalarScore(s, t bio.Sequence, sc bio.Scoring) int {
	score, _, _ := ScalarScoreBounded(s, t, sc, nil)
	return score
}

// ScalarScoreBounded is the exact scalar rung under a Bound, exported
// for callers outside the packed ladder (the search layer's scalar
// reference path). pruned reports that the exact score is provably
// < ab.Below (score is then 0); rows is the number of query rows
// consumed. With a nil or disabled bound it always scans the full
// matrix and returns the exact score.
func ScalarScoreBounded(s, t bio.Sequence, sc bio.Scoring, ab *Bound) (score, rows int, pruned bool) {
	m, n := s.Len(), t.Len()
	if m == 0 || n == 0 {
		return 0, m, false
	}
	every := ab.cadence()
	next := every
	prof := bio.NewProfile(t, sc)
	gap := int32(sc.Gap)
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	var best int32
	for i := 1; i <= m; i++ {
		sub := prof.Row(s[i-1])
		d := prev[0]
		w := int32(0)
		pr := prev[1:]
		out := cur[1:]
		_ = pr[n-1]
		_ = out[n-1]
		for j := 0; j < n; j++ {
			v := d + sub[j]
			v = bio.Max32(v, w+gap)
			d = pr[j]
			v = bio.Max32(v, d+gap)
			v = bio.Clamp0(v)
			out[j] = v
			w = v
			best = bio.Max32(best, v)
		}
		prev, cur = cur, prev
		if next != 0 && i == next {
			next += every
			if int(best)+ab.Query.SuffixBound(i) < ab.Below {
				return 0, i, true
			}
		}
	}
	return int(best), m, false
}
