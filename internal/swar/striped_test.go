package swar_test

import (
	"fmt"
	"math/rand"
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/swar"
)

// scalarPair is the striped oracle: a forced-scalar align.Scan, whose
// BestScore/BestI/BestJ tie-breaking the striped kernels must
// reproduce exactly.
func scalarPair(t *testing.T, s, tt bio.Sequence, sc bio.Scoring) swar.Pair {
	t.Helper()
	r, err := align.Scan(s, tt, sc, align.ScanOptions{ForceScalar: true})
	if err != nil {
		t.Fatal(err)
	}
	return swar.Pair{Score: r.BestScore, I: r.BestI, J: r.BestJ}
}

// checkStriped compares every rung that accepts the pair against the
// scalar oracle, and requires the full ladder to always be exact.
func checkStriped(t *testing.T, name string, s, tt bio.Sequence, sc bio.Scoring) {
	t.Helper()
	want := scalarPair(t, s, tt, sc)
	var al swar.Aligner
	if got, ok := al.StripedScan8(s, tt, sc); ok && got != want {
		t.Errorf("%s: StripedScan8 (|s|=%d |t|=%d) = %+v, want %+v", name, len(s), len(tt), got, want)
	}
	if got, ok := al.StripedScan16(s, tt, sc); ok && got != want {
		t.Errorf("%s: StripedScan16 (|s|=%d |t|=%d) = %+v, want %+v", name, len(s), len(tt), got, want)
	}
	if got := al.StripedScore(s, tt, sc); got != want {
		t.Errorf("%s: StripedScore (|s|=%d |t|=%d) = %+v, want %+v", name, len(s), len(tt), got, want)
	}
}

// TestStripedRandom sweeps random pairs across lengths that exercise
// every striped shape: single-word stripes, partial last lanes, long
// segments. Random 4-letter DNA stays far below the int8 cap, so the
// int8 rung must accept every one of these.
func TestStripedRandom(t *testing.T) {
	g := bio.NewGenerator(21)
	sc := bio.DefaultScoring()
	lengths := []int{1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 64, 100, 257}
	for _, m := range lengths {
		for _, n := range lengths {
			checkStriped(t, fmt.Sprintf("random-%dx%d", m, n), g.Random(m), g.Random(n), sc)
		}
	}
}

// TestStripedHomologous covers mutated copies — locally similar pairs
// whose alignments cross many segment boundaries, stressing the lazy
// wrap-around correction loop.
func TestStripedHomologous(t *testing.T) {
	g := bio.NewGenerator(22)
	sc := bio.DefaultScoring()
	for _, n := range []int{20, 50, 90, 120} {
		s := g.Random(n)
		tt := g.MutatedCopy(s, bio.DefaultMutationModel())
		checkStriped(t, fmt.Sprintf("homologous-%d", n), s, tt, sc)
	}
}

// TestStripedSaturation pins the exact-or-flagged contract on identity
// pairs whose scores straddle the int8 cap: at score ≤ 127 the int8
// rung must stay exact, above it the rung must flag and bail while the
// int16 rung (and the full ladder) stays exact.
func TestStripedSaturation(t *testing.T) {
	g := bio.NewGenerator(23)
	sc := bio.DefaultScoring()
	var al swar.Aligner
	for _, n := range []int{125, 126, 127, 128, 129, 200, 600} {
		s := g.Random(n)
		want := scalarPair(t, s, s, sc)
		if want.Score != n {
			t.Fatalf("identity of length %d scored %d", n, want.Score)
		}
		got8, ok8 := al.StripedScan8(s, s, sc)
		if n <= bio.PackedCap8 {
			if !ok8 || got8 != want {
				t.Errorf("identity-%d: int8 rung = %+v ok=%v, want exact %+v", n, got8, ok8, want)
			}
		} else if ok8 {
			t.Errorf("identity-%d: int8 rung accepted a score above its cap: %+v", n, got8)
		}
		if got16, ok16 := al.StripedScan16(s, s, sc); !ok16 || got16 != want {
			t.Errorf("identity-%d: int16 rung = %+v ok=%v, want exact %+v", n, got16, ok16, want)
		}
		checkStriped(t, fmt.Sprintf("identity-%d", n), s, s, sc)
	}
}

// TestStripedSaturation16 straddles the int16 cap with a match reward
// of 300: identities of length 109/110 score 32700/33000, either side
// of 32767. The overflowing case must be flagged by both packed rungs
// and recovered exactly by the scalar rung of StripedScore.
func TestStripedSaturation16(t *testing.T) {
	g := bio.NewGenerator(24)
	sc := bio.Scoring{Match: 300, Mismatch: -300, Gap: -600}
	var al swar.Aligner
	for _, n := range []int{109, 110} {
		s := g.Random(n)
		want := scalarPair(t, s, s, sc)
		if _, ok := al.StripedScan8(s, s, sc); ok {
			t.Errorf("match=300 accepted by the int8 rung")
		}
		got16, ok16 := al.StripedScan16(s, s, sc)
		if n*sc.Match <= bio.PackedCap16 {
			if !ok16 || got16 != want {
				t.Errorf("identity-%d: int16 rung = %+v ok=%v, want exact %+v", n, got16, ok16, want)
			}
		} else if ok16 {
			t.Errorf("identity-%d: int16 rung accepted score %d above its cap", n, n*sc.Match)
		}
		if got := al.StripedScore(s, s, sc); got != want {
			t.Errorf("identity-%d: StripedScore = %+v, want %+v", n, got, want)
		}
	}
}

// TestStripedWildcard covers N-laden sequences: all-N stripes, N
// columns inside otherwise matching runs, and N against N (never a
// match, like the scalar rule).
func TestStripedWildcard(t *testing.T) {
	sc := bio.DefaultScoring()
	cases := [][2]string{
		{"ACGTNNNNACGTACGTNACGT", "ACGTNNNNACGTACGTNACGT"},
		{"NNNNNNNNNN", "NNNNNNNNNN"},
		{"ACGTACGTACGT", "ACGNACGNACGN"},
		{"NANANANANANANANAN", "ANANANANANANANANA"},
	}
	for i, c := range cases {
		checkStriped(t, fmt.Sprintf("wildcard-%d", i), bio.MustSequence(c[0]), bio.MustSequence(c[1]), sc)
	}
	var al swar.Aligner
	got, ok := al.StripedScan8(bio.MustSequence("NNNNNNNNNN"), bio.MustSequence("NNNNNNNNNN"), sc)
	if !ok || got.Score != 0 {
		t.Errorf("all-N pair: %+v ok=%v, want score 0 (N never matches)", got, ok)
	}
}

// TestStripedTieBreaking hammers the coordinate rule on periodic
// sequences where the best score is achieved at many cells: the striped
// result must pick align.Scan's cell (earliest row, then earliest
// column of that row's maximum) every time.
func TestStripedTieBreaking(t *testing.T) {
	sc := bio.DefaultScoring()
	cases := [][2]string{
		{"ACACACACACAC", "ACACACACACAC"},
		{"ACACACACACAC", "CACACACACACA"},
		{"AAAAAAAA", "AAAA"},
		{"AAAA", "AAAAAAAA"},
		{"ACGTACGTACGTACGT", "ACGT"},
		{"ACGT", "ACGTACGTACGTACGT"},
		{"GGGGGGGGGGGGGGGGG", "GGGGGGGGGGGGGGGGG"},
	}
	for i, c := range cases {
		checkStriped(t, fmt.Sprintf("tie-%d", i), bio.MustSequence(c[0]), bio.MustSequence(c[1]), sc)
	}
}

// TestStripedEmpty pins the empty-input conventions against align.Scan.
func TestStripedEmpty(t *testing.T) {
	g := bio.NewGenerator(25)
	sc := bio.DefaultScoring()
	checkStriped(t, "empty-s", bio.Sequence{}, g.Random(30), sc)
	checkStriped(t, "empty-t", g.Random(30), bio.Sequence{}, sc)
	checkStriped(t, "empty-both", bio.Sequence{}, bio.Sequence{}, sc)
}

// TestStripedAlignerReuse checks that striped buffers carry no state
// across scans of varying shape, including shrinking stripes.
func TestStripedAlignerReuse(t *testing.T) {
	g := bio.NewGenerator(26)
	sc := bio.DefaultScoring()
	var al swar.Aligner
	for i := 0; i < 12; i++ {
		m := 5 + (i*53)%140
		n := 3 + (i*37)%180
		s, tt := g.Random(m), g.Random(n)
		want := scalarPair(t, s, tt, sc)
		if got, ok := al.StripedScan8(s, tt, sc); !ok || got != want {
			t.Fatalf("iteration %d (%dx%d): %+v ok=%v, want %+v", i, m, n, got, ok, want)
		}
	}
}

// ---- Band kernel differential tests ----

// scalarBandChunk replicates the preprocess runner's scalar chunk loop
// bit for bit: the reference the BandKernel must match on every output
// (columns, bottom row, hits, strict-improvement best).
type scalarBandChunk struct {
	rows bio.Sequence
	sc   bio.Scoring
	thr  int
}

func (k *scalarBandChunk) run(c *swar.ChunkArgs, saved map[int][]int32) (swar.ChunkBest, error) {
	h := len(k.rows)
	prevCol := make([]int32, h+1)
	col := make([]int32, h+1)
	prevCol[0] = c.Diag
	copy(prevCol[1:], c.Left)
	out := swar.ChunkBest{Score: c.BestIn}
	for ci := range c.Cols {
		tc := c.Cols[ci]
		if c.Top != nil {
			col[0] = c.Top[ci]
		} else {
			col[0] = 0
		}
		hits := int32(0)
		for x := 1; x <= h; x++ {
			v := int(prevCol[x-1]) + k.sc.Pair(k.rows[x-1], tc)
			if w := int(prevCol[x]) + k.sc.Gap; w > v {
				v = w
			}
			if no := int(col[x-1]) + k.sc.Gap; no > v {
				v = no
			}
			if v < 0 {
				v = 0
			}
			col[x] = int32(v)
			if v >= k.thr {
				hits++
			}
			if v > out.Score {
				out.Score, out.Row, out.Col, out.Improved = v, x-1, ci, true
			}
		}
		c.Bottom[ci] = col[h]
		c.Hits[ci] = hits
		if c.WantCol != nil && c.WantCol(ci) {
			cp := make([]int32, h)
			copy(cp, col[1:])
			saved[ci] = cp
		}
		prevCol, col = col, prevCol
	}
	copy(c.Left, prevCol[1:])
	return out, nil
}

// TestBandKernelDifferential drives random multi-chunk bands with
// non-zero borders through the striped BandKernel and the scalar
// reference, comparing every observable output.
func TestBandKernelDifferential(t *testing.T) {
	g := bio.NewGenerator(27)
	rng := rand.New(rand.NewSource(28))
	sc := bio.DefaultScoring()
	for trial := 0; trial < 30; trial++ {
		h := 1 + rng.Intn(40)
		width := 1 + rng.Intn(50)
		thr := 1 + rng.Intn(8)
		rows := g.Random(h)
		cols := g.Random(width)
		// Borders mimic mid-matrix chunk entry: small non-negative
		// carried values (real preprocess borders are clamped scores).
		diag := int32(rng.Intn(20))
		left := make([]int32, h)
		for x := range left {
			left[x] = int32(rng.Intn(20))
		}
		var top []int32
		if rng.Intn(4) > 0 {
			top = make([]int32, width)
			for x := range top {
				top[x] = int32(rng.Intn(20))
			}
		}
		bestIn := rng.Intn(15)
		saveEvery := 1 + rng.Intn(5)

		mk := func() *swar.ChunkArgs {
			l := make([]int32, h)
			copy(l, left)
			return &swar.ChunkArgs{
				Cols:    cols,
				Diag:    diag,
				Left:    l,
				Top:     top,
				BestIn:  bestIn,
				Bottom:  make([]int32, width),
				Hits:    make([]int32, width),
				WantCol: func(ci int) bool { return ci%saveEvery == 0 },
			}
		}

		wantSaved := map[int][]int32{}
		wantArgs := mk()
		ref := &scalarBandChunk{rows: rows, sc: sc, thr: thr}
		wantBest, err := ref.run(wantArgs, wantSaved)
		if err != nil {
			t.Fatal(err)
		}

		gotSaved := map[int][]int32{}
		gotArgs := mk()
		gotArgs.Save = func(ci int, col []int32) error {
			cp := make([]int32, len(col))
			copy(cp, col)
			gotSaved[ci] = cp
			return nil
		}
		kern := swar.NewBandKernel(rows, sc, thr)
		gotBest, done, err := kern.Chunk(gotArgs)
		if err != nil {
			t.Fatal(err)
		}
		if done != width {
			t.Fatalf("trial %d: kernel consumed %d of %d columns (h=%d)", trial, done, width, h)
		}
		if gotBest != wantBest {
			t.Fatalf("trial %d: best %+v, want %+v", trial, gotBest, wantBest)
		}
		for ci := 0; ci < width; ci++ {
			if gotArgs.Bottom[ci] != wantArgs.Bottom[ci] {
				t.Fatalf("trial %d col %d: bottom %d, want %d", trial, ci, gotArgs.Bottom[ci], wantArgs.Bottom[ci])
			}
			if gotArgs.Hits[ci] != wantArgs.Hits[ci] {
				t.Fatalf("trial %d col %d: hits %d, want %d", trial, ci, gotArgs.Hits[ci], wantArgs.Hits[ci])
			}
		}
		for x := 0; x < h; x++ {
			if gotArgs.Left[x] != wantArgs.Left[x] {
				t.Fatalf("trial %d row %d: final column %d, want %d", trial, x, gotArgs.Left[x], wantArgs.Left[x])
			}
		}
		if len(gotSaved) != len(wantSaved) {
			t.Fatalf("trial %d: saved %d columns, want %d", trial, len(gotSaved), len(wantSaved))
		}
		for ci, want := range wantSaved {
			got := gotSaved[ci]
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("trial %d saved col %d row %d: %d, want %d", trial, ci, x, got[x], want[x])
				}
			}
		}
	}
}

// TestBandKernelBoundRejects pins the up-front refusal: borders high
// enough that the value bound escapes even int16 must be rejected
// before any side effect (Bottom/Hits untouched).
func TestBandKernelBoundRejects(t *testing.T) {
	g := bio.NewGenerator(29)
	sc := bio.DefaultScoring()
	rows := g.Random(10)
	kern := swar.NewBandKernel(rows, sc, 1)
	left := make([]int32, 10)
	left[3] = 40000 // beyond the int16 clean cap
	args := &swar.ChunkArgs{
		Cols:   g.Random(6),
		Left:   left,
		Bottom: make([]int32, 6),
		Hits:   make([]int32, 6),
	}
	if _, done, err := kern.Chunk(args); done != 0 || err != nil {
		t.Fatalf("kernel accepted a chunk whose bound overflows int16 (done=%v err=%v)", done, err)
	}
	for ci, v := range args.Bottom {
		if v != 0 || args.Hits[ci] != 0 {
			t.Fatal("rejected chunk left side effects behind")
		}
	}
}

// TestBandKernelWidePath forces the int16 band path with borders above
// the int8 cap and checks it against the scalar reference.
func TestBandKernelWidePath(t *testing.T) {
	g := bio.NewGenerator(30)
	rng := rand.New(rand.NewSource(31))
	sc := bio.DefaultScoring()
	h, width := 12, 20
	rows := g.Random(h)
	cols := g.Random(width)
	left := make([]int32, h)
	for x := range left {
		left[x] = int32(200 + rng.Intn(100)) // above PackedCap8
	}
	top := make([]int32, width)
	for x := range top {
		top[x] = int32(200 + rng.Intn(100))
	}
	mk := func() *swar.ChunkArgs {
		l := make([]int32, h)
		copy(l, left)
		return &swar.ChunkArgs{
			Cols: cols, Diag: 250, Left: l, Top: top, BestIn: 0,
			Bottom: make([]int32, width), Hits: make([]int32, width),
		}
	}
	wantArgs := mk()
	ref := &scalarBandChunk{rows: rows, sc: sc, thr: 1}
	wantBest, _ := ref.run(wantArgs, map[int][]int32{})
	gotArgs := mk()
	kern := swar.NewBandKernel(rows, sc, 1)
	gotBest, done, err := kern.Chunk(gotArgs)
	if err != nil || done != width {
		t.Fatalf("int16 band path rejected (done=%v err=%v)", done, err)
	}
	if gotBest != wantBest {
		t.Fatalf("best %+v, want %+v", gotBest, wantBest)
	}
	for ci := 0; ci < width; ci++ {
		if gotArgs.Bottom[ci] != wantArgs.Bottom[ci] || gotArgs.Hits[ci] != wantArgs.Hits[ci] {
			t.Fatalf("col %d: bottom/hits (%d,%d), want (%d,%d)", ci,
				gotArgs.Bottom[ci], gotArgs.Hits[ci], wantArgs.Bottom[ci], wantArgs.Hits[ci])
		}
	}
	for x := 0; x < h; x++ {
		if gotArgs.Left[x] != wantArgs.Left[x] {
			t.Fatalf("row %d: final column %d, want %d", x, gotArgs.Left[x], wantArgs.Left[x])
		}
	}
}

// TestBandKernelSlicedHighBorders drives borders so high that the
// whole-chunk value bound escapes the int16 clean range — the case the
// pre-slicing kernel refused outright — and checks the column-sliced
// packed path against the scalar reference on every output, including
// saved columns whose indices must be rebased across slice boundaries.
func TestBandKernelSlicedHighBorders(t *testing.T) {
	g := bio.NewGenerator(33)
	rng := rand.New(rand.NewSource(34))
	sc := bio.DefaultScoring()
	for trial := 0; trial < 20; trial++ {
		h := 8 + rng.Intn(24)
		width := 40 + rng.Intn(40)
		rows := g.Random(h)
		cols := g.Random(width)
		// Borders a few dozen below the int16 cap: any single slice
		// fits, the whole chunk provably does not (diag alone is close
		// enough to the cap that adding min(h,width) matches escapes it).
		diag := int32(bio.PackedCap16 - 7 + rng.Intn(6))
		left := make([]int32, h)
		maxIn := diag
		for x := range left {
			left[x] = int32(bio.PackedCap16 - 60 + rng.Intn(50))
			maxIn = max(maxIn, left[x])
		}
		top := make([]int32, width)
		for x := range top {
			top[x] = int32(bio.PackedCap16 - 60 + rng.Intn(55))
			maxIn = max(maxIn, top[x])
		}
		if int(maxIn)+min(h, width)*sc.Match <= bio.PackedCap16 {
			t.Fatalf("trial %d: borders too low to force slicing", trial)
		}
		saveEvery := 1 + rng.Intn(7)
		mk := func() *swar.ChunkArgs {
			l := make([]int32, h)
			copy(l, left)
			return &swar.ChunkArgs{
				Cols: cols, Diag: diag, Left: l, Top: top,
				BestIn:  bio.PackedCap16 - 100,
				Bottom:  make([]int32, width),
				Hits:    make([]int32, width),
				WantCol: func(ci int) bool { return ci%saveEvery == 0 },
			}
		}
		wantSaved := map[int][]int32{}
		wantArgs := mk()
		ref := &scalarBandChunk{rows: rows, sc: sc, thr: 1}
		wantBest, err := ref.run(wantArgs, wantSaved)
		if err != nil {
			t.Fatal(err)
		}
		gotSaved := map[int][]int32{}
		gotArgs := mk()
		gotArgs.Save = func(ci int, col []int32) error {
			cp := make([]int32, len(col))
			copy(cp, col)
			gotSaved[ci] = cp
			return nil
		}
		kern := swar.NewBandKernel(rows, sc, 1)
		gotBest, done, err := kern.Chunk(gotArgs)
		if err != nil {
			t.Fatal(err)
		}
		// Random DNA decays from the borders, so the real values never
		// approach the cap and every slice must be accepted.
		if done != width {
			t.Fatalf("trial %d: consumed %d of %d columns (h=%d)", trial, done, width, h)
		}
		if gotBest != wantBest {
			t.Fatalf("trial %d: best %+v, want %+v", trial, gotBest, wantBest)
		}
		for ci := 0; ci < width; ci++ {
			if gotArgs.Bottom[ci] != wantArgs.Bottom[ci] || gotArgs.Hits[ci] != wantArgs.Hits[ci] {
				t.Fatalf("trial %d col %d: bottom/hits (%d,%d), want (%d,%d)", trial, ci,
					gotArgs.Bottom[ci], gotArgs.Hits[ci], wantArgs.Bottom[ci], wantArgs.Hits[ci])
			}
		}
		for x := 0; x < h; x++ {
			if gotArgs.Left[x] != wantArgs.Left[x] {
				t.Fatalf("trial %d row %d: final column %d, want %d", trial, x, gotArgs.Left[x], wantArgs.Left[x])
			}
		}
		if len(gotSaved) != len(wantSaved) {
			t.Fatalf("trial %d: saved %d columns, want %d", trial, len(gotSaved), len(wantSaved))
		}
		for ci, want := range wantSaved {
			got := gotSaved[ci]
			if got == nil {
				t.Fatalf("trial %d: saved column %d missing (slice offset rebase)", trial, ci)
			}
			for x := range want {
				if got[x] != want[x] {
					t.Fatalf("trial %d saved col %d row %d: %d, want %d", trial, ci, x, got[x], want[x])
				}
			}
		}
	}
}

// TestBandKernelMidChunkStall pins the partial-consumption contract: a
// homopolymer band growing +1 per column from near-cap borders reaches
// the int16 clean cap mid-chunk, so the kernel must consume exactly the
// columns whose values still fit, leave later outputs untouched, and
// report done < width so the caller's scalar loop finishes the chunk.
func TestBandKernelMidChunkStall(t *testing.T) {
	sc := bio.DefaultScoring()
	h, width := 16, 60
	rows := make(bio.Sequence, h)
	cols := make(bio.Sequence, width)
	for i := range rows {
		rows[i] = 'A'
	}
	for i := range cols {
		cols[i] = 'A'
	}
	start := int32(bio.PackedCap16 - 7) // 7 match columns to the cap
	left := make([]int32, h)
	for x := range left {
		left[x] = start
	}
	mk := func(w int) *swar.ChunkArgs {
		l := make([]int32, h)
		copy(l, left)
		return &swar.ChunkArgs{
			Cols: cols[:w], Diag: start, Left: l,
			Bottom: make([]int32, w), Hits: make([]int32, w),
		}
	}
	gotArgs := mk(width)
	kern := swar.NewBandKernel(rows, sc, 1)
	gotBest, done, err := kern.Chunk(gotArgs)
	if err != nil {
		t.Fatal(err)
	}
	if done == 0 || done >= width {
		t.Fatalf("expected a mid-chunk stall, consumed %d of %d columns", done, width)
	}
	// The consumed prefix must match the scalar reference run on a
	// truncated chunk with identical borders.
	wantArgs := mk(done)
	ref := &scalarBandChunk{rows: rows, sc: sc, thr: 1}
	wantBest, err := ref.run(wantArgs, map[int][]int32{})
	if err != nil {
		t.Fatal(err)
	}
	if gotBest != wantBest {
		t.Fatalf("best %+v, want %+v", gotBest, wantBest)
	}
	for ci := 0; ci < done; ci++ {
		if gotArgs.Bottom[ci] != wantArgs.Bottom[ci] || gotArgs.Hits[ci] != wantArgs.Hits[ci] {
			t.Fatalf("col %d: bottom/hits (%d,%d), want (%d,%d)", ci,
				gotArgs.Bottom[ci], gotArgs.Hits[ci], wantArgs.Bottom[ci], wantArgs.Hits[ci])
		}
	}
	for ci := done; ci < width; ci++ {
		if gotArgs.Bottom[ci] != 0 || gotArgs.Hits[ci] != 0 {
			t.Fatalf("col %d beyond the stall was written", ci)
		}
	}
	// Left must hold column done-1 so the caller's scalar continuation
	// sees the exact border state.
	for x := 0; x < h; x++ {
		if gotArgs.Left[x] != wantArgs.Left[x] {
			t.Fatalf("row %d: stalled left %d, want %d", x, gotArgs.Left[x], wantArgs.Left[x])
		}
	}
}

// TestStripedGapChains stresses the lazy-F correction loop and its
// change-mask best fold: cheap gaps on near-homopolymer pairs make the
// F wrap-around corrections span many stripe words, the regime where a
// wrong or stale change mask would drop the true best.
func TestStripedGapChains(t *testing.T) {
	g := bio.NewGenerator(35)
	cheapGap := bio.Scoring{Match: 2, Mismatch: -1, Gap: -1}
	for _, n := range []int{17, 64, 129, 300} {
		s := make(bio.Sequence, n)
		tt := make(bio.Sequence, n)
		for i := range s {
			s[i], tt[i] = 'A', 'A'
		}
		// Mismatch islands force the optimum to route around them with
		// gap chains rather than straight diagonals.
		for i := 5; i < n; i += 11 {
			tt[i] = 'C'
		}
		checkStriped(t, fmt.Sprintf("gapchain-%d", n), s, tt, cheapGap)
		// A mutated random pair under the same cheap-gap scoring.
		r := g.Random(n)
		m := g.MutatedCopy(r, bio.DefaultMutationModel())
		checkStriped(t, fmt.Sprintf("gapchain-mut-%d", n), r, m, cheapGap)
	}
}
