package swar

import "genomedsm/internal/bio"

// This file holds the mid-scan early-abandon machinery of the search
// layer's ALAE-style exact pruning. A Bound threads a pruning threshold
// into the packed kernels: every cadence rows the kernel folds its
// running per-lane maximum, adds the query's remaining-suffix upper
// bound (bio.QueryBound) and abandons the scan when even that
// optimistic total is strictly below the threshold.
//
// Exactness: any local alignment of q against a lane either ends within
// the rows already scanned — its score is folded into the running
// maximum — or crosses row r, where its prefix value is a DP cell ≤ the
// running maximum and its remaining columns add at most SuffixBound(r).
// Either way score ≤ runningMax + SuffixBound(r), so when that sum is
// < Below for the maximum over all lanes, every lane is provably below
// the threshold. Saturated lanes are excluded as evidence (their
// running maximum is garbage); they ride the usual fallback ladder,
// where the wider retry gets its own chance to abandon.

// DefaultAbandonEvery is the default abandon check cadence in query
// rows: rare enough that the fold and suffix lookup vanish against the
// row cost, frequent enough that an abandoned record wastes at most one
// cadence of rows past the provable cutoff.
const DefaultAbandonEvery = 64

// Bound configures the optional mid-scan early abandon of a packed
// scan. The zero value — and a nil *Bound — disables it.
type Bound struct {
	// Below is the strict pruning threshold: the scan may be abandoned
	// once every lane's exact score is provably < Below. Ties are never
	// pruned, so callers can skip records strictly below a result floor
	// while records tying it keep their chance on the tie-break.
	Below int
	// Query supplies the remaining-suffix upper bounds: a
	// bio.QueryBound built from the same query sequence and scoring
	// scheme as the scan. A nil Query disables the bound.
	Query *bio.QueryBound
	// Every is the check cadence in query rows; ≤ 0 selects
	// DefaultAbandonEvery.
	Every int
}

// cadence returns the active check cadence, or 0 when the bound is
// disabled (nil receiver, no query bounds, or an unreachable
// threshold).
func (b *Bound) cadence() int {
	if b == nil || b.Query == nil || b.Below <= 0 {
		return 0
	}
	if b.Every > 0 {
		return b.Every
	}
	return DefaultAbandonEvery
}

// Scan8Bounded is Scan8 under a Bound: an abandoned scan returns
// Pruned=true with Rows set to the rows consumed, and Scores must then
// be ignored (every lane is provably below ab.Below).
func (a *Aligner) Scan8Bounded(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, ab *Bound) (LaneScores, bool) {
	if -sc.Gap > bio.PackedCap8 {
		return LaneScores{}, false
	}
	prof := bio.NewPackedProfile8(targets, sc)
	if prof == nil {
		return LaneScores{}, false
	}
	return a.finish(q, prof, sc, len(targets), ab), true
}

// Scan8Prof is Scan8Bounded with a caller-supplied prebuilt 8-lane
// profile: the pack-v2 fast path, where the profile is built once from
// the precomputed lane-interleaved layout words and shared across the
// queries of a batch instead of being rebuilt per scan. prof must
// describe the group being scanned under sc (bio.NewPackedProfile8 or
// its bit-identical from-words equivalent) and lanes is the number of
// live targets. ok is false when prof is nil or the gap penalty does
// not fit an int8 lane — the same conditions under which Scan8Bounded
// refuses, so callers fall back identically.
func (a *Aligner) Scan8Prof(q bio.Sequence, prof *bio.PackedProfile, sc bio.Scoring, lanes int, ab *Bound) (LaneScores, bool) {
	if prof == nil || -sc.Gap > bio.PackedCap8 {
		return LaneScores{}, false
	}
	return a.finish(q, prof, sc, lanes, ab), true
}

// Scan16Bounded is Scan16 under a Bound.
func (a *Aligner) Scan16Bounded(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, ab *Bound) (LaneScores, bool) {
	if -sc.Gap > bio.PackedCap16 {
		return LaneScores{}, false
	}
	prof := bio.NewPackedProfile16(targets, sc)
	if prof == nil {
		return LaneScores{}, false
	}
	return a.finish(q, prof, sc, len(targets), ab), true
}

// ScoresBounded is Scores under a Bound: pruned[i] reports that target
// i's exact score is provably < ab.Below (scores[i] is then 0 and
// meaningless) and rows[i] is the number of query rows the rung that
// resolved target i consumed (the full query length unless pruned).
// Targets that are not pruned are scored bit-exactly, by the same
// int8 → int16 → scalar ladder as Scores; with a nil or disabled bound
// the result degenerates to exactly Scores.
func (a *Aligner) ScoresBounded(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, ab *Bound) (scores []int, pruned []bool, rows []int, err error) {
	return a.scoresLadder(q, targets, sc, nil, ab)
}

// GroupScores is the same int8 → int16 → scalar ladder for one lane
// group of at most PackedLanes8 targets, optionally starting from a
// caller-supplied prebuilt int8 profile — the pack-v2 fast path, where
// the group's profile comes from the precomputed lane layout (or is
// built once and shared across the queries of a batch) instead of being
// rebuilt per call. prof, when non-nil, must describe exactly these
// targets under this scoring (bio.NewPackedProfile8 or its bit-identical
// from-words equivalent); a nil prof reproduces ScoresBounded exactly.
func (a *Aligner) GroupScores(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, prof *bio.PackedProfile, ab *Bound) (scores []int, pruned []bool, rows []int, err error) {
	return a.scoresLadder(q, targets, sc, prof, ab)
}

func (a *Aligner) scoresLadder(q bio.Sequence, targets []bio.Sequence, sc bio.Scoring, prof *bio.PackedProfile, ab *Bound) (scores []int, pruned []bool, rows []int, err error) {
	if err := sc.Validate(); err != nil {
		return nil, nil, nil, err
	}
	scores = make([]int, len(targets))
	pruned = make([]bool, len(targets))
	rows = make([]int, len(targets))
	for i := range rows {
		rows[i] = len(q)
	}
	var narrow []int // target indices needing the int16 retry
	for lo := 0; lo < len(targets); lo += bio.PackedLanes8 {
		hi := min(lo+bio.PackedLanes8, len(targets))
		var ls LaneScores
		var ok bool
		if prof != nil && lo == 0 && hi == len(targets) {
			// The prebuilt profile covers the whole (single-subgroup) lane
			// group; its nil-vs-built conditions match NewPackedProfile8,
			// so ok agrees with the build-per-call path below.
			ls, ok = a.Scan8Prof(q, prof, sc, hi-lo, ab)
		} else {
			ls, ok = a.Scan8Bounded(q, targets[lo:hi], sc, ab)
		}
		if !ok {
			for i := lo; i < hi; i++ {
				narrow = append(narrow, i)
			}
			continue
		}
		if ls.Pruned {
			for i := lo; i < hi; i++ {
				pruned[i] = true
				rows[i] = ls.Rows
			}
			continue
		}
		for l := 0; l < ls.Lanes; l++ {
			if ls.Saturated&(1<<uint(l)) != 0 {
				narrow = append(narrow, lo+l)
			} else {
				scores[lo+l] = ls.Scores[l]
			}
		}
	}
	var scalar []int // target indices needing the exact scalar kernel
	group := make([]bio.Sequence, 0, bio.PackedLanes16)
	for lo := 0; lo < len(narrow); lo += bio.PackedLanes16 {
		hi := min(lo+bio.PackedLanes16, len(narrow))
		group = group[:0]
		for _, idx := range narrow[lo:hi] {
			group = append(group, targets[idx])
		}
		ls, ok := a.Scan16Bounded(q, group, sc, ab)
		if !ok {
			scalar = append(scalar, narrow[lo:hi]...)
			continue
		}
		if ls.Pruned {
			for _, idx := range narrow[lo:hi] {
				pruned[idx] = true
				rows[idx] = ls.Rows
			}
			continue
		}
		for l := 0; l < ls.Lanes; l++ {
			if ls.Saturated&(1<<uint(l)) != 0 {
				scalar = append(scalar, narrow[lo+l])
			} else {
				scores[narrow[lo+l]] = ls.Scores[l]
			}
		}
	}
	for _, idx := range scalar {
		scores[idx], rows[idx], pruned[idx] = ScalarScoreBounded(q, targets[idx], sc, ab)
	}
	return scores, pruned, rows, nil
}
