package swar

import (
	"math/bits"

	"genomedsm/internal/bio"
)

// BandKernel runs the striped step kernel over the *interior* of one
// pre-process band (a horizontal stripe of rows scanned column by
// column): the band's rows are striped across lanes and one outer step
// advances a whole column. Unlike the pairwise scans, a chunk starts
// from arbitrary non-zero border values (the DSM passage band above and
// the carried column on the left), so instead of detecting saturation
// after the fact — side effects (saved columns, hit counts) stream
// during the chunk and could not be rolled back — the kernel *proves*
// saturation impossible up front: along any DP path inside a chunk the
// score grows only on diagonal steps (gap steps are penalties, and a
// path entering from a border or restarting at the zero clamp gains at
// most Match per diagonal step), so every interior cell is bounded by
//
//	maxBorderInput + min(bandRows, chunkCols)·Match.
//
// Chunk picks the narrowest lane width whose clean range holds that
// bound, or reports ok=false before any side effect so the caller runs
// its scalar loop. Within an accepted chunk the results — column
// values, bottom row, per-column threshold hits, strict-improvement
// best tracking — are bit-exact against the scalar recurrence.
type BandKernel struct {
	rows            bio.Sequence
	sc              bio.Scoring
	thr             int
	prof8, prof16   *bio.StripedProfile
	guard8, guard16 []uint64 // per-word guard bits of real lanes
	prev, cur       []uint64
	chg             []uint64 // correction-loop change mask
	unpack          []int32
}

// ChunkArgs describes one chunk of columns. Slices are caller-owned;
// Left is updated in place to the chunk's final column.
type ChunkArgs struct {
	// Cols holds the chunk's column residues (the slice of t).
	Cols bio.Sequence
	// Diag is the top-left corner border value H(r0-1, c0-1).
	Diag int32
	// Left holds the band's row values at the column before the chunk
	// (length = band rows); on return it holds the chunk's last column.
	Left []int32
	// Top holds the border row above the band for the chunk's columns
	// (length = len(Cols)); nil means the zero border of the top band.
	Top []int32
	// BestIn is the running strict-improvement best score before the
	// chunk.
	BestIn int
	// Bottom receives the band's last-row value per column (length =
	// len(Cols)).
	Bottom []int32
	// Hits receives the per-column count of cells ≥ the kernel's
	// threshold (length = len(Cols)).
	Hits []int32
	// WantCol reports whether the finished column ci (chunk-local)
	// should be handed to Save; nil means no columns are saved.
	WantCol func(ci int) bool
	// Save receives wanted columns in column order. The slice is reused
	// between calls and must be copied to retain.
	Save func(ci int, col []int32) error
}

// ChunkBest is Chunk's strict-improvement best-score outcome.
type ChunkBest struct {
	// Score/Row/Col are meaningful only when Improved: Row is the
	// 0-based row inside the band, Col the 0-based column inside the
	// chunk, of the first cell (column-major order) where the running
	// best strictly improved to its final value.
	Score, Row, Col int
	Improved        bool
}

// NewBandKernel prepares the striped profiles of one band's rows. The
// kernel is reusable across the band's chunks; it must not be shared
// between goroutines.
func NewBandKernel(rows bio.Sequence, sc bio.Scoring, threshold int) *BandKernel {
	k := &BandKernel{rows: rows, sc: sc, thr: threshold}
	if -sc.Gap <= bio.PackedCap8 {
		k.prof8 = bio.NewStripedProfile8(rows, sc)
		k.guard8 = guardMasks(k.prof8)
	}
	if -sc.Gap <= bio.PackedCap16 {
		k.prof16 = bio.NewStripedProfile16(rows, sc)
		k.guard16 = guardMasks(k.prof16)
	}
	return k
}

func guardMasks(prof *bio.StripedProfile) []uint64 {
	if prof == nil {
		return nil
	}
	g := make([]uint64, prof.SegLen())
	for v := range g {
		g[v] = prof.GuardMask(v)
	}
	return g
}

// Chunk advances the band across c's columns and returns the number of
// leading columns it consumed (with all their side effects streamed in
// column order). done == len(c.Cols) is the full chunk; done == 0 means
// nothing was touched; in between, the caller's scalar loop must finish
// columns done… — Left then holds column done−1, exactly the carried
// state that loop needs.
//
// The old all-or-nothing bound check is replaced by per-slice border
// rescale: when the whole-chunk value bound overflows a lane width, the
// chunk is split into column slices, each re-bounded from the *actual*
// border values at its first column instead of the chunk-entry maximum
// plus the full diagonal budget. Along any DP path the score gains at
// most Match per column, so the loose whole-chunk bound overshoots by
// up to min(rows, cols)·Match — re-reading real borders between slices
// recovers that slack and keeps high-scoring preprocess chunks on the
// packed int16 path that previously bailed to the scalar loop. A slice
// is bit-exact by the same argument as before (its bound holds every
// cell), and slices chain exactly: run leaves Left holding the slice's
// last column, which is the next slice's left border.
func (k *BandKernel) Chunk(c *ChunkArgs) (ChunkBest, int, error) {
	h := len(k.rows)
	width := len(c.Cols)
	if h == 0 || width == 0 {
		return ChunkBest{}, 0, nil
	}
	out := ChunkBest{Score: c.BestIn}
	lo := 0
	for lo < width {
		// Re-bound from the actual border values at column lo.
		diag := c.Diag
		if lo > 0 {
			diag = 0
			if c.Top != nil {
				diag = c.Top[lo-1]
			}
		}
		base := max(int(diag), 0)
		for _, v := range c.Left {
			base = max(base, int(v))
		}
		// Greedy widest slice whose bound fits the int16 clean range:
		// the bound is nondecreasing in the slice width, so extend until
		// it breaks. Each column is examined once across all slices.
		hi, m := lo, base
		for hi < width {
			nm := m
			if c.Top != nil {
				nm = max(nm, int(c.Top[hi]))
			}
			if nm+min(h, hi-lo+1)*k.sc.Match > bio.PackedCap16 {
				break
			}
			m = nm
			hi++
		}
		if hi == lo || k.prof16 == nil {
			// Even a one-column slice overflows int16: the values here
			// genuinely exceed every clean lane range.
			return out, lo, nil
		}
		sliceBound := m + min(h, hi-lo)*k.sc.Match
		prof, guard := k.prof16, k.guard16
		if k.prof8 != nil && sliceBound <= bio.PackedCap8 {
			prof, guard = k.prof8, k.guard8
		}
		sub := ChunkArgs{
			Cols:   c.Cols[lo:hi],
			Diag:   diag,
			Left:   c.Left,
			BestIn: out.Score,
			Bottom: c.Bottom[lo:hi],
			Hits:   c.Hits[lo:hi],
		}
		if c.Top != nil {
			sub.Top = c.Top[lo:hi]
		}
		if c.WantCol != nil {
			off := lo
			sub.WantCol = func(ci int) bool { return c.WantCol(ci + off) }
			sub.Save = func(ci int, col []int32) error { return c.Save(ci+off, col) }
		}
		sb, err := k.run(prof, guard, &sub, sliceBound)
		if sb.Improved {
			out.Score, out.Row, out.Col, out.Improved = sb.Score, sb.Row, sb.Col+lo, true
		}
		if err != nil {
			return out, lo, err
		}
		lo = hi
	}
	return out, width, nil
}

func (k *BandKernel) run(prof *bio.StripedProfile, guard []uint64, c *ChunkArgs, bound int) (ChunkBest, error) {
	h, width := len(k.rows), len(c.Cols)
	segLen := prof.SegLen()
	wide := prof.Lanes() == bio.PackedLanes16
	if cap(k.prev) < segLen {
		k.prev = make([]uint64, segLen)
		k.cur = make([]uint64, segLen)
	}
	prev, cur := k.prev[:segLen], k.cur[:segLen]
	chgWords := (segLen + 63) / 64
	if cap(k.chg) < chgWords {
		k.chg = make([]uint64, chgWords)
	}
	changed := k.chg[:chgWords]
	clear(changed)
	packColumn(prof, c.Left, prev)
	if cap(k.unpack) < h {
		k.unpack = make([]int32, h)
	}

	gapV := prof.Broadcast(-k.sc.Gap)
	value := prof.ValueMask()
	countHits := k.thr <= bound // otherwise no cell can reach it
	var thrV uint64
	if countHits {
		thrV = prof.Broadcast(k.thr)
	}
	// Seed the packed fold at the incoming best (clamped to the lane
	// cap: when BestIn exceeds it, no in-bound cell can improve on it
	// and the fold must simply never fire).
	out := ChunkBest{Score: c.BestIn}
	bestW := prof.Broadcast(min(c.BestIn, prof.Cap()))
	var sat uint64
	satMask := uint64(hi8)
	if wide {
		satMask = hi16
	}
	bw, bl := (h-1)%segLen, (h-1)/segLen // striped home of the band's last row

	diagIn := uint64(uint32(c.Diag))
	for ci := 0; ci < width; ci++ {
		tc := c.Cols[ci]
		var topv int32
		if c.Top != nil {
			topv = c.Top[ci]
		}
		fIn := uint64(uint32(bio.Clamp0(topv + int32(k.sc.Gap))))
		var nb uint64
		if wide {
			nb, sat = stepStriped16(prev, cur, prof.PlusRow(tc), prof.MinusRow(tc), value, changed, gapV, diagIn, fIn, bestW, sat)
		} else {
			nb, sat = stepStriped8(prev, cur, prof.PlusRow(tc), prof.MinusRow(tc), value, changed, gapV, diagIn, fIn, bestW, sat)
		}
		if nb != bestW {
			bestW = nb
			var m int
			if wide {
				m = reduce16(bestW)
			} else {
				m = reduce8(bestW)
			}
			if m > out.Score {
				// The running best strictly improved in THIS column;
				// the first striped position holding the new maximum is
				// the cell the scalar loop would have updated at last.
				out.Score, out.Row, out.Col = m, stripedFind(prof, cur, m)-1, ci
				out.Improved = true
			}
		}
		c.Bottom[ci] = int32(prof.Lane(cur[bw], bl))
		if countHits {
			cnt := 0
			for v := 0; v < segLen; v++ {
				cnt += bits.OnesCount64(((cur[v] | satMask) - thrV) & guard[v])
			}
			c.Hits[ci] = int32(cnt)
		} else {
			c.Hits[ci] = 0
		}
		if c.WantCol != nil && c.WantCol(ci) {
			unpackColumn(prof, cur, k.unpack[:h])
			if err := c.Save(ci, k.unpack[:h]); err != nil {
				return out, err
			}
		}
		diagIn = uint64(uint32(topv))
		prev, cur = cur, prev
	}
	if sat&satMask != 0 {
		// The bound proof above makes this unreachable; reaching it
		// means a kernel bug, and silent wrong hit counts or saved
		// columns would be far worse than stopping the run.
		panic("swar: band kernel saturated despite value bound")
	}
	unpackColumn(prof, prev, c.Left)
	k.prev, k.cur = prev, cur
	return out, nil
}

// packColumn scatters the column values into their striped lane homes;
// values must fit the profile's clean lane range.
func packColumn(prof *bio.StripedProfile, vals []int32, out []uint64) {
	clear(out)
	segLen := prof.SegLen()
	shift := prof.Shift()
	for p, val := range vals {
		out[p%segLen] |= uint64(uint32(val)) << (uint(p/segLen) * shift)
	}
}

// unpackColumn gathers the striped words back into sequential order.
func unpackColumn(prof *bio.StripedProfile, words []uint64, out []int32) {
	segLen := prof.SegLen()
	for p := range out {
		out[p] = int32(prof.Lane(words[p%segLen], p/segLen))
	}
}
