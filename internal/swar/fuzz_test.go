package swar_test

import (
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/swar"
)

// fuzzSeq maps arbitrary bytes to the DNA alphabet including 'N', so the
// fuzzer exercises the wildcard rule alongside the four bases.
func fuzzSeq(raw []byte, limit int) bio.Sequence {
	if len(raw) > limit {
		raw = raw[:limit]
	}
	s := make(bio.Sequence, len(raw))
	for i, b := range raw {
		s[i] = "ACGTN"[int(b)%5]
	}
	return s
}

// FuzzScoresVsScalar drives the full int8→int16→scalar chain against the
// scalar align.Scan on arbitrary query/target bytes, splitting the
// target material into lanes of fuzzer-chosen uneven lengths. cut1/cut2
// and the repeat count shape the lane group so the fuzzer can construct
// empty lanes, duplicate lanes and high-identity (saturating) lanes.
func FuzzScoresVsScalar(f *testing.F) {
	f.Add([]byte("acgtacgtacgt"), []byte("tacgtacg"), uint8(3), uint8(5), uint8(2))
	f.Add([]byte{}, []byte{1, 2, 3, 4}, uint8(0), uint8(0), uint8(9))
	f.Add([]byte("aaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaa"), uint8(8), uint8(16), uint8(6))
	f.Fuzz(func(t *testing.T, rawQ, rawT []byte, cut1, cut2, rep uint8) {
		q := fuzzSeq(rawQ, 128)
		pool := fuzzSeq(rawT, 160)
		a, b := int(cut1)%(len(pool)+1), int(cut2)%(len(pool)+1)
		if a > b {
			a, b = b, a
		}
		targets := []bio.Sequence{pool[:a], pool[a:b], pool[b:]}
		// Repeating the query as a lane forces identity scores — on long
		// inputs these saturate int8 and exercise the fallback.
		for i := 0; i < int(rep)%6; i++ {
			targets = append(targets, q)
		}
		var al swar.Aligner
		got, err := al.Scores(q, targets, bio.DefaultScoring())
		if err != nil {
			t.Fatal(err)
		}
		for i, tgt := range targets {
			r, err := align.Scan(q, tgt, bio.DefaultScoring(), align.ScanOptions{ForceScalar: true})
			if err != nil {
				t.Fatal(err)
			}
			if got[i] != r.BestScore {
				t.Fatalf("lane %d (|q|=%d |t|=%d): packed %d, scalar %d",
					i, len(q), len(tgt), got[i], r.BestScore)
			}
		}
	})
}

// FuzzStripedVsScalar drives the striped intra-sequence ladder against
// the forced-scalar align.Scan on arbitrary sequence pairs and three
// scoring schemes, checking score AND end-coordinate bit-exactness.
// The high-reward scheme saturates int8 within 6 matches and int16
// within ~5, exercising every rung of the fallback ladder.
func FuzzStripedVsScalar(f *testing.F) {
	f.Add([]byte("acgtacgtacgt"), []byte("tacgtacg"), uint8(0))
	f.Add([]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), []byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"), uint8(1))
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4}, uint8(2))
	f.Fuzz(func(t *testing.T, rawS, rawT []byte, scheme uint8) {
		s := fuzzSeq(rawS, 128)
		tt := fuzzSeq(rawT, 128)
		scorings := []bio.Scoring{
			bio.DefaultScoring(),
			{Match: 25, Mismatch: -2, Gap: -3},         // saturates int8 in 6 matches
			{Match: 7000, Mismatch: -7000, Gap: -9000}, // no int8 layout, saturates int16 in 5
		}
		sc := scorings[int(scheme)%len(scorings)]
		r, err := align.Scan(s, tt, sc, align.ScanOptions{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		want := swar.Pair{Score: r.BestScore, I: r.BestI, J: r.BestJ}
		var al swar.Aligner
		if got, ok := al.StripedScan8(s, tt, sc); ok && got != want {
			t.Fatalf("StripedScan8 (|s|=%d |t|=%d %+v): %+v, want %+v", len(s), len(tt), sc, got, want)
		}
		if got, ok := al.StripedScan16(s, tt, sc); ok && got != want {
			t.Fatalf("StripedScan16 (|s|=%d |t|=%d %+v): %+v, want %+v", len(s), len(tt), sc, got, want)
		}
		if got := al.StripedScore(s, tt, sc); got != want {
			t.Fatalf("StripedScore (|s|=%d |t|=%d %+v): %+v, want %+v", len(s), len(tt), sc, got, want)
		}
	})
}
