package swar_test

import (
	"math/rand"
	"testing"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/swar"
)

// The tests live in an external package (swar_test) because the
// differential oracles import align, which itself imports swar for the
// striped fast path; guard-bit masks are restated here.
const (
	hi8  = 0x8080808080808080
	hi16 = 0x8000800080008000
)

// ---- SWAR primitive unit tests: packed ops vs per-lane reference loops ----

// TestClampPrimitives pins the guard-bit contracts of the packed ops:
// for penalty lanes y within the clean range, SubClamp* is the exact
// zero-clamped subtract on clean x lanes and always lands back in the
// clean range (containment) for any x — even when neighbouring lanes
// carry dirty guard-bit values — and MaxClamped* is the exact unsigned
// per-lane maximum for every x.
func TestClampPrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := []uint64{0, ^uint64(0), hi8, hi16, 0x00FF00FF00FF00FF,
		0x0101010101010101, ^uint64(hi8), ^uint64(hi16)}
	for i := 0; i < 1000; i++ {
		words := append(base[:len(base):len(base)], rng.Uint64(), rng.Uint64())
		for _, x := range words {
			for _, yr := range words {
				y := yr &^ hi8 // penalty lanes stay ≤ 127 by contract
				sub := swar.SubClamp8(x, y)
				mx := swar.MaxClamped8(x, y)
				for l := 0; l < 8; l++ {
					xl := int(x >> (8 * l) & 0xFF)
					yl := int(y >> (8 * l) & 0xFF)
					sl := int(sub >> (8 * l) & 0xFF)
					ml := int(mx >> (8 * l) & 0xFF)
					if sl > 127 {
						t.Fatalf("SubClamp8(%#x,%#x) lane %d = %d escapes the clean range", x, y, l, sl)
					}
					if xl <= 127 && sl != max(0, xl-yl) {
						t.Fatalf("SubClamp8(%#x,%#x) lane %d = %d, want %d", x, y, l, sl, max(0, xl-yl))
					}
					if ml != max(xl, yl) {
						t.Fatalf("MaxClamped8(%#x,%#x) lane %d = %d, want %d", x, y, l, ml, max(xl, yl))
					}
				}
				y = yr &^ hi16
				sub = swar.SubClamp16(x, y)
				mx = swar.MaxClamped16(x, y)
				for l := 0; l < 4; l++ {
					xl := int(x >> (16 * l) & 0xFFFF)
					yl := int(y >> (16 * l) & 0xFFFF)
					sl := int(sub >> (16 * l) & 0xFFFF)
					ml := int(mx >> (16 * l) & 0xFFFF)
					if sl > 32767 {
						t.Fatalf("SubClamp16(%#x,%#x) lane %d = %d escapes the clean range", x, y, l, sl)
					}
					if xl <= 32767 && sl != max(0, xl-yl) {
						t.Fatalf("SubClamp16(%#x,%#x) lane %d = %d, want %d", x, y, l, sl, max(0, xl-yl))
					}
					if ml != max(xl, yl) {
						t.Fatalf("MaxClamped16(%#x,%#x) lane %d = %d, want %d", x, y, l, ml, max(xl, yl))
					}
				}
			}
		}
	}
}

// ---- Differential tests: packed lane scores vs the scalar align.Scan ----

// scalarScores is the reference: one forced-scalar align.Scan per
// target (ForceScalar keeps the oracle independent of the striped fast
// path under test).
func scalarScores(t *testing.T, q bio.Sequence, targets []bio.Sequence, sc bio.Scoring) []int {
	t.Helper()
	out := make([]int, len(targets))
	for i, tgt := range targets {
		r, err := align.Scan(q, tgt, sc, align.ScanOptions{ForceScalar: true})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r.BestScore
	}
	return out
}

// checkScores runs the full fallback chain and compares against scalar.
func checkScores(t *testing.T, name string, q bio.Sequence, targets []bio.Sequence, sc bio.Scoring) {
	t.Helper()
	var al swar.Aligner
	got, err := al.Scores(q, targets, sc)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	want := scalarScores(t, q, targets, sc)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s: target %d (|t|=%d): packed score %d, scalar %d",
				name, i, len(targets[i]), got[i], want[i])
		}
	}
}

func TestScoresRandom(t *testing.T) {
	g := bio.NewGenerator(1)
	sc := bio.DefaultScoring()
	for _, n := range []int{1, 2, 7, 64, 300} {
		q := g.Random(n)
		var targets []bio.Sequence
		for i := 0; i < 19; i++ { // deliberately not a multiple of 8
			targets = append(targets, g.Random(1+i*17%257))
		}
		checkScores(t, "random", q, targets, sc)
	}
}

func TestScoresHomologous(t *testing.T) {
	g := bio.NewGenerator(2)
	sc := bio.DefaultScoring()
	q := g.Random(100)
	var targets []bio.Sequence
	for i := 0; i < 12; i++ {
		targets = append(targets, g.MutatedCopy(q, bio.DefaultMutationModel()))
	}
	// Homologous targets of a 100-base query score well above the random
	// noise floor but below the int8 clean cap, so every lane must stay in
	// the packed path; assert at least one real hit to keep the test honest.
	scores := scalarScores(t, q, targets, sc)
	maxScore := 0
	for _, s := range scores {
		maxScore = max(maxScore, s)
	}
	if maxScore < 30 || maxScore >= bio.PackedCap8 {
		t.Fatalf("homologous scores not in the int8 sweet spot: max %d", maxScore)
	}
	checkScores(t, "homologous", q, targets, sc)
}

func TestScoresWithN(t *testing.T) {
	sc := bio.DefaultScoring()
	q := bio.MustSequence("ACGTNNNNACGTACGTNACGT")
	targets := []bio.Sequence{
		bio.MustSequence("ACGTNNNNACGTACGTNACGT"), // N aligns N: still mismatch
		bio.MustSequence("NNNNNNNN"),
		bio.MustSequence("ACGT"),
		bio.MustSequence("TTTT"),
	}
	checkScores(t, "with-N", q, targets, sc)
	// The all-N target must score 0: 'N' never matches, even itself.
	var al swar.Aligner
	got, err := al.Scores(q, targets, sc)
	if err != nil {
		t.Fatal(err)
	}
	if got[1] != 0 {
		t.Errorf("all-N target scored %d, want 0 (N must never match)", got[1])
	}
}

func TestScoresEmpty(t *testing.T) {
	sc := bio.DefaultScoring()
	g := bio.NewGenerator(3)
	checkScores(t, "empty-query", bio.Sequence{}, []bio.Sequence{g.Random(50), {}}, sc)
	checkScores(t, "empty-targets", g.Random(50), []bio.Sequence{{}, {}, {}}, sc)
	var al swar.Aligner
	got, err := al.Scores(g.Random(10), nil, sc)
	if err != nil || len(got) != 0 {
		t.Errorf("no targets: got %v, %v", got, err)
	}
}

// TestScoresSaturation forces the int8→int16 fallback: near-identical
// 600-base sequences score ≈600, far above the int8 clean cap of 127.
func TestScoresSaturation(t *testing.T) {
	g := bio.NewGenerator(4)
	sc := bio.DefaultScoring()
	q := g.Random(600)
	targets := []bio.Sequence{
		q.Clone(),       // identity: score 600 ≫ 127
		g.Random(600),   // noise: stays in int8
		q[:300].Clone(), // score 300: saturates int8, fits int16
		q[:100].Clone(), // score 100: stays in int8
	}
	var al swar.Aligner
	ls, ok := al.Scan8(q, targets, sc)
	if !ok {
		t.Fatal("Scan8 rejected default scoring")
	}
	if ls.Saturated&1 == 0 || ls.Saturated&(1<<2) == 0 {
		t.Errorf("identity lanes not flagged saturated: mask %08b scores %v", ls.Saturated, ls.Scores[:4])
	}
	if ls.Saturated&(1<<3) != 0 {
		t.Errorf("score-100 lane wrongly saturated: mask %08b", ls.Saturated)
	}
	checkScores(t, "saturation", q, targets, sc)
}

// TestScoresScalarFallback forces the full chain down to align.Scan: a
// match reward of 1000 overflows even the int16 clean cap on a 100-base
// identity, and its magnitude does not fit an int8 lane at all.
func TestScoresScalarFallback(t *testing.T) {
	g := bio.NewGenerator(5)
	sc := bio.Scoring{Match: 1000, Mismatch: -1000, Gap: -2000}
	q := g.Random(100)
	targets := []bio.Sequence{q.Clone(), g.Random(100)}
	var al swar.Aligner
	if _, ok := al.Scan8(q, targets, sc); ok {
		t.Fatal("Scan8 accepted a scoring scheme that cannot fit int8 lanes")
	}
	ls, ok := al.Scan16(q, targets[:1], sc)
	if !ok {
		t.Fatal("Scan16 rejected a scheme that fits int16 lanes")
	}
	if ls.Saturated&1 == 0 {
		t.Errorf("100×1000 identity should saturate int16: scores %v", ls.Scores[:1])
	}
	checkScores(t, "scalar-fallback", q, targets, sc)
}

// TestScan16Direct exercises the int16 kernel on scores that fit it.
func TestScan16Direct(t *testing.T) {
	g := bio.NewGenerator(6)
	sc := bio.DefaultScoring()
	q := g.Random(500)
	targets := []bio.Sequence{q.Clone(), g.MutatedCopy(q, bio.DefaultMutationModel()), g.Random(200)}
	var al swar.Aligner
	ls, ok := al.Scan16(q, targets, sc)
	if !ok {
		t.Fatal("Scan16 rejected default scoring")
	}
	if ls.Saturated != 0 {
		t.Fatalf("unexpected int16 saturation: %08b", ls.Saturated)
	}
	want := scalarScores(t, q, targets, sc)
	for i := range want {
		if ls.Scores[i] != want[i] {
			t.Errorf("int16 lane %d: %d, want %d", i, ls.Scores[i], want[i])
		}
	}
}

// TestAlignerReuse checks that the reused row buffers carry no state
// between scans of different shapes.
func TestAlignerReuse(t *testing.T) {
	g := bio.NewGenerator(8)
	sc := bio.DefaultScoring()
	var al swar.Aligner
	for i := 0; i < 10; i++ {
		q := g.Random(10 + i*37)
		targets := []bio.Sequence{g.Random(200 - i*13), g.Random(5 + i), g.MutatedCopy(q, bio.DefaultMutationModel())}
		got, err := al.Scores(q, targets, sc)
		if err != nil {
			t.Fatal(err)
		}
		want := scalarScores(t, q, targets, sc)
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("iteration %d target %d: %d want %d", i, j, got[j], want[j])
			}
		}
	}
}

// TestPackedProfile checks the packed rows against the scalar profile
// semantics lane by lane.
func TestPackedProfile(t *testing.T) {
	sc := bio.DefaultScoring()
	targets := []bio.Sequence{
		bio.MustSequence("ACGTN"),
		bio.MustSequence("AAA"),
		{},
		bio.MustSequence("NNNNNNN"),
	}
	p := bio.NewPackedProfile8(targets, sc)
	if p == nil {
		t.Fatal("profile rejected default scoring")
	}
	if p.Words() != 7 || p.Lanes() != 8 || p.Cap() != bio.PackedCap8 {
		t.Fatalf("geometry: words=%d lanes=%d cap=%d", p.Words(), p.Lanes(), p.Cap())
	}
	for _, a := range []byte{'A', 'C', 'G', 'T', 'N'} {
		plus, minus := p.PlusRow(a), p.MinusRow(a)
		for j := 0; j < p.Words(); j++ {
			for l, tgt := range targets {
				wantPlus, wantMinus := 0, -sc.Mismatch
				if j < len(tgt) && bio.Matches(a, tgt[j]) {
					wantPlus, wantMinus = sc.Match, 0
				}
				if got := p.Lane(plus[j], l); got != wantPlus {
					t.Errorf("plus[%q][%d] lane %d = %d, want %d", a, j, l, got, wantPlus)
				}
				if got := p.Lane(minus[j], l); got != wantMinus {
					t.Errorf("minus[%q][%d] lane %d = %d, want %d", a, j, l, got, wantMinus)
				}
			}
		}
	}
	if bio.NewPackedProfile8(make([]bio.Sequence, 9), sc) != nil {
		t.Error("9 targets accepted by the 8-lane profile")
	}
	if bio.NewPackedProfile8(targets, bio.Scoring{Match: 300, Mismatch: -1, Gap: -2}) != nil {
		t.Error("match magnitude 300 accepted by the int8 profile")
	}
	// 200 fits a raw byte but not the clean 7-bit range behind the guard bit.
	if bio.NewPackedProfile8(targets, bio.Scoring{Match: 200, Mismatch: -1, Gap: -2}) != nil {
		t.Error("match magnitude 200 accepted by the guard-bit int8 profile")
	}
	if bio.NewPackedProfile16(targets[:3], bio.Scoring{Match: 300, Mismatch: -299, Gap: -600}) == nil {
		t.Error("match magnitude 300 rejected by the int16 profile")
	}
}

// TestScoresManyLengths sweeps very uneven lane lengths (padding paths).
func TestScoresManyLengths(t *testing.T) {
	g := bio.NewGenerator(9)
	sc := bio.DefaultScoring()
	q := g.Random(150)
	var targets []bio.Sequence
	for _, n := range []int{0, 1, 2, 3, 150, 149, 151, 40, 7, 1000, 999, 5, 0, 64, 31, 16, 8} {
		targets = append(targets, g.Random(n))
	}
	checkScores(t, "many-lengths", q, targets, sc)
}
