package swar

import (
	"math/bits"

	"genomedsm/internal/bio"
)

// This file holds the *intra*-sequence striped kernels: where swar.go
// packs 8 different targets into the lanes of a word (inter-sequence,
// DSA-style), the striped kernels vectorize ONE pairwise alignment by
// interleaving the positions of a single sequence across lanes in
// Farrar's striped layout (bio.StripedProfile; SWAPHI applies the same
// idea on wide-vector CPUs). One outer step advances a full row of the
// DP matrix over all striped positions:
//
//   - the *diagonal* dependency H(i-1, p-1) is the previous step's word
//     v-1 (consecutive words are consecutive in-lane positions), except
//     at word 0 where it is the previous step's LAST word shifted up by
//     one lane, with the caller's border value inserted into lane 0;
//   - the *up* dependency H(i-1, p) is the previous step's same word —
//     purely elementwise;
//   - the *in-stripe* dependency H(i, p-1) + gap (the gap chain along
//     the striped sequence) is carried word-to-word as vF inside the
//     pass, which handles every chain EXCEPT those crossing a segment
//     boundary (word segLen-1 lane l → word 0 lane l+1). Those are
//     fixed afterwards by the lazy wrap-around correction loop: shift
//     vF up one lane and keep re-applying it until a whole word is left
//     unimproved, at which point every downstream value was already
//     computed with exactly that chain (Farrar 2007's argument carries
//     over unchanged to the clamped guard-bit arithmetic).
//
// Every iteration of the correction loop either strictly increases some
// lane (values are bounded by the lane range) or terminates, so it
// provably stops; a defensive iteration cap forces the saturation flag
// if that invariant is ever broken by a bug, which sends callers down
// the exact scalar fallback instead of returning silent garbage.

// Pair is the outcome of one striped pairwise scan: the best
// local-alignment score and its 1-based end coordinates, bit-exact
// against align.Scan (same strict-improvement tie-breaking).
type Pair struct {
	Score int
	I, J  int
}

// stepStriped8 advances one outer step (one row of the DP matrix) over
// the striped words. diagIn is the border diagonal value for lane 0 of
// word 0 (clean, ≤ 127); fIn is the border gap-chain word (lane 0 only,
// clean). value masks real lanes with guard bits stripped (the
// profile's ValueMask). changed is caller scratch of ⌈n/64⌉ words,
// all-zero on entry and restored to all-zero on return. Returns the
// updated best fold and saturation accumulator; cur holds the finished
// row.
//
// The correction loop carries neither the saturation OR nor the best
// fold of the main pass:
//
//   - sat needs no update because the loop cannot create a guard bit
//     the main pass did not already record: MaxClamped8(cur[v], vF)
//     copies every result lane verbatim from either cur[v] (whose guard
//     bit is already in sat) or vF, which is a SubClamp8 output and
//     therefore clean. Dirty lanes always win the max, so they freeze.
//   - best is folded once per *changed* word after the loop settles
//     (the column-sparse change mask): corrected values only ever
//     increase, so intermediate values are dominated by the final one
//     and folding only the final value of each touched word is exact.
func stepStriped8(prev, cur, plus, minus, value, changed []uint64, gapV, diagIn, fIn, best, sat uint64) (uint64, uint64) {
	n := len(plus)
	d := prev[n-1]<<8 | diagIn
	vF := fIn
	_ = cur[n-1] // bounds hints for the loop body
	_ = minus[n-1]
	_ = value[n-1]
	for v := 0; v < n; v++ {
		h := SubClamp8(d, minus[v]) + plus[v]
		d = prev[v]
		h = MaxClamped8(h, SubClamp8(d, gapV))
		h = MaxClamped8(h, vF)
		cur[v] = h
		sat |= h
		best = MaxClamped8(best, h&value[v])
		vF = SubClamp8(h, gapV)
	}
	// Lazy wrap-around correction: propagate gap chains that cross
	// segment boundaries until a whole word is left unimproved.
	vF = SubClamp8(cur[n-1], gapV) << 8
	v := 0
	for limit := (bio.PackedCap8 + 2) * n * bio.PackedLanes8; limit > 0; limit-- {
		h := MaxClamped8(cur[v], vF)
		if h == cur[v] {
			return foldChanged8(cur, value, changed, best), sat
		}
		cur[v] = h
		changed[v>>6] |= 1 << (v & 63)
		vF = SubClamp8(h, gapV)
		if v++; v == n {
			v, vF = 0, vF<<8
		}
	}
	return foldChanged8(cur, value, changed, best), sat | hi8 // unreachable: force the fallback ladder
}

// foldChanged8 folds the final value of every word the correction loop
// touched into best and clears the mask for the next row.
func foldChanged8(cur, value, changed []uint64, best uint64) uint64 {
	for w, m := range changed {
		if m == 0 {
			continue
		}
		changed[w] = 0
		base := w << 6
		for m != 0 {
			v := base + bits.TrailingZeros64(m)
			m &= m - 1
			best = MaxClamped8(best, cur[v]&value[v])
		}
	}
	return best
}

// stepStriped16 is stepStriped8 for 4 uint16 lanes, with the same
// change-mask correction loop and the same exactness argument.
func stepStriped16(prev, cur, plus, minus, value, changed []uint64, gapV, diagIn, fIn, best, sat uint64) (uint64, uint64) {
	n := len(plus)
	d := prev[n-1]<<16 | diagIn
	vF := fIn
	_ = cur[n-1]
	_ = minus[n-1]
	_ = value[n-1]
	for v := 0; v < n; v++ {
		h := SubClamp16(d, minus[v]) + plus[v]
		d = prev[v]
		h = MaxClamped16(h, SubClamp16(d, gapV))
		h = MaxClamped16(h, vF)
		cur[v] = h
		sat |= h
		best = MaxClamped16(best, h&value[v])
		vF = SubClamp16(h, gapV)
	}
	vF = SubClamp16(cur[n-1], gapV) << 16
	v := 0
	for limit := (bio.PackedCap16 + 2) * n * bio.PackedLanes16; limit > 0; limit-- {
		h := MaxClamped16(cur[v], vF)
		if h == cur[v] {
			return foldChanged16(cur, value, changed, best), sat
		}
		cur[v] = h
		changed[v>>6] |= 1 << (v & 63)
		vF = SubClamp16(h, gapV)
		if v++; v == n {
			v, vF = 0, vF<<16
		}
	}
	return foldChanged16(cur, value, changed, best), sat | hi16
}

// foldChanged16 is foldChanged8 for 4 uint16 lanes.
func foldChanged16(cur, value, changed []uint64, best uint64) uint64 {
	for w, m := range changed {
		if m == 0 {
			continue
		}
		changed[w] = 0
		base := w << 6
		for m != 0 {
			v := base + bits.TrailingZeros64(m)
			m &= m - 1
			best = MaxClamped16(best, cur[v]&value[v])
		}
	}
	return best
}

// reduce8 folds a clean (guard-stripped) packed word into its scalar
// per-lane maximum.
func reduce8(w uint64) int {
	w = MaxClamped8(w, w>>32)
	w = MaxClamped8(w, w>>16)
	w = MaxClamped8(w, w>>8)
	return int(w & 0xFF)
}

// reduce16 is reduce8 for 4 uint16 lanes.
func reduce16(w uint64) int {
	w = MaxClamped16(w, w>>32)
	w = MaxClamped16(w, w>>16)
	return int(w & 0xFFFF)
}

// stripedFind returns the 1-based striped position of the first (in
// sequence order) real lane of cur whose clean value equals want.
// Sequence order is lane-major: lane l covers positions l·segLen …
// (l+1)·segLen−1, so the scan runs lanes outer, words inner.
func stripedFind(prof *bio.StripedProfile, cur []uint64, want int) int {
	value := prof.ValueMask()
	segLen := prof.SegLen()
	for l := 0; l < prof.Lanes(); l++ {
		for v := 0; v < segLen; v++ {
			p := v + l*segLen
			if p >= prof.Len() {
				break
			}
			if prof.Lane(cur[v]&value[v], l) == want {
				return p + 1
			}
		}
	}
	return 0
}

// stripedRows returns the two striped row buffers of length segLen with
// prev cleared (the zero top border), plus the all-zero change-mask
// scratch for the correction loop.
func (a *Aligner) stripedRows(segLen int) ([]uint64, []uint64, []uint64) {
	if cap(a.sprev) < segLen {
		a.sprev = make([]uint64, segLen)
		a.scur = make([]uint64, segLen)
	}
	a.sprev = a.sprev[:segLen]
	a.scur = a.scur[:segLen]
	clear(a.sprev)
	chgWords := (segLen + 63) / 64
	if cap(a.schg) < chgWords {
		a.schg = make([]uint64, chgWords)
	}
	a.schg = a.schg[:chgWords]
	clear(a.schg)
	return a.sprev, a.scur, a.schg
}

// StripedScan8 computes the best local alignment of s against t with
// the 8-lane striped int8 kernel. ok is false when the scoring scheme
// does not fit the clean int8 lane range or any cell saturates it;
// callers then retry with StripedScan16 and finally the scalar kernel.
// When ok is true the result is bit-exact against align.Scan, including
// the BestI/BestJ strict-improvement tie-breaking.
func (a *Aligner) StripedScan8(s, t bio.Sequence, sc bio.Scoring) (Pair, bool) {
	if -sc.Gap > bio.PackedCap8 {
		return Pair{}, false
	}
	prof := bio.NewStripedProfile8(t, sc)
	if prof == nil {
		return Pair{}, false
	}
	p, _, _, ok := a.stripedScan(s, prof, -sc.Gap, nil)
	return p, ok
}

// StripedScan16 is StripedScan8 with 4 int16 lanes: half the
// parallelism, 256× the score headroom.
func (a *Aligner) StripedScan16(s, t bio.Sequence, sc bio.Scoring) (Pair, bool) {
	if -sc.Gap > bio.PackedCap16 {
		return Pair{}, false
	}
	prof := bio.NewStripedProfile16(t, sc)
	if prof == nil {
		return Pair{}, false
	}
	p, _, _, ok := a.stripedScan(s, prof, -sc.Gap, nil)
	return p, ok
}

// stripedScan streams s over the striped profile. Under a non-nil
// Bound it abandons the scan once even bestSoFar + remaining-suffix
// cannot reach ab.Below (see bound.go for the exactness argument);
// rows is the number of rows of s consumed. Saturation (ok=false)
// still defers to the wider rung, which re-checks the bound itself.
func (a *Aligner) stripedScan(s bio.Sequence, prof *bio.StripedProfile, gap int, ab *Bound) (p Pair, rows int, pruned, ok bool) {
	if len(s) == 0 || prof.SegLen() == 0 {
		return Pair{}, len(s), false, true
	}
	prev, cur, changed := a.stripedRows(prof.SegLen())
	gapV := prof.Broadcast(gap)
	value := prof.ValueMask()
	wide := prof.Lanes() == bio.PackedLanes16
	satMask := uint64(hi8)
	if wide {
		satMask = hi16
	}
	every := ab.cadence()
	next := every
	var best, sat uint64
	var res Pair
	for i := 1; i <= len(s); i++ {
		c := s[i-1]
		var nb uint64
		if wide {
			nb, sat = stepStriped16(prev, cur, prof.PlusRow(c), prof.MinusRow(c), value, changed, gapV, 0, 0, best, sat)
		} else {
			nb, sat = stepStriped8(prev, cur, prof.PlusRow(c), prof.MinusRow(c), value, changed, gapV, 0, 0, best, sat)
		}
		if sat&satMask != 0 {
			return Pair{}, i, false, false
		}
		if nb != best {
			// Some lane's running maximum grew this row; only a strict
			// improvement of the global best updates the coordinates
			// (align.Scan's row-major tie-break: earliest row, then
			// earliest column of that row's maximum).
			best = nb
			var m int
			if wide {
				m = reduce16(best)
			} else {
				m = reduce8(best)
			}
			if m > res.Score {
				res.Score, res.I, res.J = m, i, stripedFind(prof, cur, m)
			}
		}
		prev, cur = cur, prev
		if next != 0 && i == next {
			next += every
			// res.Score tracks reduce(best) exactly (best only grows and
			// every strict improvement updates it), so no extra fold.
			if res.Score+ab.Query.SuffixBound(i) < ab.Below {
				a.sprev, a.scur = prev, cur
				return Pair{}, i, true, true
			}
		}
	}
	a.sprev, a.scur = prev, cur
	return res, len(s), false, true
}

// StripedScore runs the full striped fallback ladder — int8, int16,
// exact scalar — and always returns the exact best score and end
// coordinates, bit-exact against align.Scan.
func (a *Aligner) StripedScore(s, t bio.Sequence, sc bio.Scoring) Pair {
	p, _, _ := a.StripedScoreBounded(s, t, sc, nil)
	return p
}

// StripedScoreBounded is StripedScore under a Bound: pruned reports
// that the exact score is provably < ab.Below (the Pair is then zero),
// and rows is the number of rows of s the resolving rung consumed.
// Unpruned results are bit-exact against align.Scan, coordinates and
// tie-breaks included.
func (a *Aligner) StripedScoreBounded(s, t bio.Sequence, sc bio.Scoring, ab *Bound) (p Pair, rows int, pruned bool) {
	if -sc.Gap <= bio.PackedCap8 {
		if prof := bio.NewStripedProfile8(t, sc); prof != nil {
			if p, rows, pruned, ok := a.stripedScan(s, prof, -sc.Gap, ab); ok {
				return p, rows, pruned
			}
		}
	}
	if -sc.Gap <= bio.PackedCap16 {
		if prof := bio.NewStripedProfile16(t, sc); prof != nil {
			if p, rows, pruned, ok := a.stripedScan(s, prof, -sc.Gap, ab); ok {
				return p, rows, pruned
			}
		}
	}
	return a.scalarPair(s, t, sc, ab)
}

// scalarPair is the exact scalar rung with coordinates: scalarScore's
// loop plus align.Scan's strict-improvement coordinate tracking, with
// the same optional mid-scan abandon as ScalarScoreBounded.
func (a *Aligner) scalarPair(s, t bio.Sequence, sc bio.Scoring, ab *Bound) (p Pair, rows int, pruned bool) {
	m, n := s.Len(), t.Len()
	if m == 0 || n == 0 {
		return Pair{}, m, false
	}
	every := ab.cadence()
	next := every
	prof := bio.NewProfile(t, sc)
	gap := int32(sc.Gap)
	prev := make([]int32, n+1)
	cur := make([]int32, n+1)
	var res Pair
	var best int32
	for i := 1; i <= m; i++ {
		sub := prof.Row(s[i-1])
		d := prev[0]
		w := int32(0)
		var rowBest int32
		rowJ := 0
		for j := 0; j < n; j++ {
			v := d + sub[j]
			v = bio.Max32(v, w+gap)
			d = prev[j+1]
			v = bio.Max32(v, d+gap)
			v = bio.Clamp0(v)
			cur[j+1] = v
			w = v
			if v > rowBest {
				rowBest, rowJ = v, j+1
			}
		}
		if rowBest > best {
			best = rowBest
			res.Score, res.I, res.J = int(rowBest), i, rowJ
		}
		prev, cur = cur, prev
		if next != 0 && i == next {
			next += every
			if int(best)+ab.Query.SuffixBound(i) < ab.Below {
				return Pair{}, i, true
			}
		}
	}
	return res, m, false
}
