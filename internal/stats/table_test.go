package stats

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Table X", "size", "serial", "8 proc")
	tbl.AddRow("50K", 3461.0, 1107.02)
	tbl.AddRow("15K", 296.0, 181.29)
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Table X") {
		t.Errorf("missing title: %q", lines[0])
	}
	if !strings.Contains(out, "3461s") {
		t.Errorf("seconds not formatted: %s", out)
	}
	// Columns must align: header and rows share the first column width.
	if !strings.Contains(lines[1], "size") || !strings.Contains(lines[2], "----") {
		t.Errorf("header/separator wrong:\n%s", out)
	}
}

func TestFormatSeconds(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		12e-6:  "12.0µs",
		3.5e-3: "3.50ms",
		1.25:   "1.25s",
		3461:   "3461s",
		175295: "175295s",
	}
	for in, want := range cases {
		if got := FormatSeconds(in); got != want {
			t.Errorf("FormatSeconds(%g) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatCount(t *testing.T) {
	cases := map[int64]string{
		7:          "7",
		999:        "999",
		1000:       "1,000",
		2500000000: "2,500,000,000",
	}
	for in, want := range cases {
		if got := FormatCount(in); got != want {
			t.Errorf("FormatCount(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("Fig 9", "procs", []Series{
		{Label: "15K", Points: []Point{{2, 1.05}, {4, 1.46}, {8, 1.63}}},
		{Label: "400K", Points: []Point{{2, 1.24}, {4, 2.41}, {8, 4.59}}},
	})
	for _, want := range []string{"Fig 9", "procs", "15K", "400K", "1.05", "4.59"} {
		if !strings.Contains(out, want) {
			t.Errorf("series output missing %q:\n%s", want, out)
		}
	}
	// Missing points render as '-'.
	out = RenderSeries("f", "x", []Series{
		{Label: "a", Points: []Point{{1, 1}}},
		{Label: "b", Points: []Point{{2, 2}}},
	})
	if !strings.Contains(out, "-") {
		t.Errorf("missing point not dashed:\n%s", out)
	}
}
