// Package stats provides the small reporting utilities shared by the
// benchmark harness: aligned text tables (the paper's tables) and simple
// series formatting (the paper's figures, printed as data series).
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple aligned-column text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatSeconds(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AddRowRaw appends a row of pre-formatted strings.
func (t *Table) AddRowRaw(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render produces the aligned text form.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// FormatSeconds renders a duration in seconds with sensible precision.
func FormatSeconds(s float64) string {
	switch {
	case s == 0:
		return "0"
	case s < 1e-3:
		return fmt.Sprintf("%.1fµs", s*1e6)
	case s < 1:
		return fmt.Sprintf("%.2fms", s*1e3)
	case s < 100:
		return fmt.Sprintf("%.2fs", s)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

// FormatCount renders a large count with thousands separators.
func FormatCount(v int64) string {
	s := fmt.Sprintf("%d", v)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return strings.Join(parts, ",")
}

// Series is one labelled data series of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Point is one (x, y) sample.
type Point struct {
	X, Y float64
}

// RenderSeries prints labelled series as aligned columns (x then one
// column per series), the textual equivalent of a paper figure.
func RenderSeries(title, xlabel string, series []Series) string {
	tbl := NewTable(title, append([]string{xlabel}, labels(series)...)...)
	// Collect the union of x values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range series {
		for _, p := range s.Points {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []string{trimFloat(x)}
		for _, s := range series {
			cell := "-"
			for _, p := range s.Points {
				if p.X == x {
					cell = fmt.Sprintf("%.2f", p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		tbl.AddRowRaw(row...)
	}
	return tbl.Render()
}

func labels(series []Series) []string {
	out := make([]string, len(series))
	for i, s := range series {
		out[i] = s.Label
	}
	return out
}

func trimFloat(v float64) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
