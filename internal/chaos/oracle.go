package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"time"

	"genomedsm/internal/align"
	"genomedsm/internal/bio"
	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/phase2"
	"genomedsm/internal/preprocess"
	"genomedsm/internal/recovery"
	"genomedsm/internal/wavefront"
)

// Strategy names one parallel strategy the oracle can put under chaos.
type Strategy int

// Strategies under test.
const (
	// StrategyNoBlock is the §4.2 non-blocked wavefront.
	StrategyNoBlock Strategy = iota
	// StrategyBlocked is the §4.3 blocked wavefront over shared memory.
	StrategyBlocked
	// StrategyBlockedMP is the blocked wavefront's message-passing
	// ablation.
	StrategyBlockedMP
	// StrategyPreprocess is the §5 pre-processing strategy.
	StrategyPreprocess
	// StrategyPhase2 is phase 2 over the lock-protected shared work
	// queue (the variant whose grant order chaos can permute).
	StrategyPhase2
	// NumStrategies bounds per-strategy tables.
	NumStrategies
)

// String names the strategy as the CLI spells it.
func (s Strategy) String() string {
	switch s {
	case StrategyNoBlock:
		return "noblock"
	case StrategyBlocked:
		return "blocked"
	case StrategyBlockedMP:
		return "blockedmp"
	case StrategyPreprocess:
		return "preprocess"
	case StrategyPhase2:
		return "phase2"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// ParseStrategy inverts String.
func ParseStrategy(name string) (Strategy, error) {
	for s := Strategy(0); s < NumStrategies; s++ {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("chaos: unknown strategy %q (want one of %s)", name, strategyNames())
}

// AllStrategies lists every strategy the oracle covers.
func AllStrategies() []Strategy {
	out := make([]Strategy, NumStrategies)
	for i := range out {
		out[i] = Strategy(i)
	}
	return out
}

func strategyNames() string {
	names := make([]string, NumStrategies)
	for s := Strategy(0); s < NumStrategies; s++ {
		names[s] = s.String()
	}
	return strings.Join(names, ", ")
}

// Options configures a CheckStrategies sweep.
type Options struct {
	// Seed is the master seed: it derives the generated input pair and,
	// via PlanSeed, every schedule's fault plan and gate.
	Seed int64
	// Schedules is how many distinct schedules to explore per strategy
	// (default 4).
	Schedules int
	// Strategies under test (default all).
	Strategies []Strategy
	// Nprocs is the simulated cluster size (default 4).
	Nprocs int
	// SeqLen is the generated sequence length (default 600).
	SeqLen int
	// Plan holds the fault parameters (default DefaultPlanConfig).
	Plan PlanConfig
	// Kills schedules crash-stop faults: node i dies at its t-th recovery
	// point and is recovered from its checkpoint. Ignored for
	// StrategyBlockedMP, which has no DSM state to re-home (its fault
	// support is loss-timing only).
	Kills []recovery.Kill
	// Recovery overrides the failure-detector / recovery-manager
	// parameters; the zero value means defaults. The retry backoff's
	// jitter seed, when unset, is derived from each run's plan seed so
	// replays stay exact.
	Recovery recovery.Params
	// UsePlanZero disables fault injection (schedule exploration only)
	// when Plan is deliberately all-zero. Without this flag a zero Plan
	// is replaced by DefaultPlanConfig.
	UsePlanZero bool
	// CacheSlots squeezes the per-node page cache to force eviction
	// traffic (default 4; negative leaves the strategy's own setting).
	CacheSlots int
	// Timeout is the per-run watchdog (default 60s): a run exceeding it
	// is reported as a hang divergence.
	Timeout time.Duration
	// TraceTail bounds the trace excerpt attached to a divergence
	// (default 64 events).
	TraceTail int
}

func (o Options) withDefaults() Options {
	if o.Schedules <= 0 {
		o.Schedules = 4
	}
	if len(o.Strategies) == 0 {
		o.Strategies = AllStrategies()
	}
	if o.Nprocs <= 0 {
		o.Nprocs = 4
	}
	if o.SeqLen <= 0 {
		o.SeqLen = 600
	}
	if (o.Plan == PlanConfig{}) && !o.UsePlanZero {
		o.Plan = DefaultPlanConfig()
	}
	if o.CacheSlots == 0 {
		o.CacheSlots = 4
	} else if o.CacheSlots < 0 {
		o.CacheSlots = 0
	}
	if o.Timeout <= 0 {
		o.Timeout = 60 * time.Second
	}
	if o.TraceTail <= 0 {
		o.TraceTail = 64
	}
	return o
}

// ErrHang marks a run that exceeded the watchdog timeout.
var ErrHang = errors.New("chaos: run exceeded watchdog timeout (suspected deadlock or livelock)")

// ErrWeakInput marks a generated input pair on which the sequential scan
// finds no candidates, leaving nothing to differentially check.
var ErrWeakInput = errors.New("chaos: sequential scan found no candidates; input too weak for a differential check")

// Divergence describes one run whose result differed from the sequential
// baseline (or hung, or errored). Everything needed to replay it is
// included: rebuild the same Options and the PlanSeed reproduces the
// identical interleaving.
type Divergence struct {
	Strategy Strategy
	Schedule int
	PlanSeed int64
	Detail   string
	Trace    string // tail of the protocol trace
	Stats    dsm.Stats
}

// Error renders the divergence as a replayable failure report.
func (d *Divergence) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "chaos divergence: strategy=%s schedule=%d planSeed=%d\n  %s\n  stats: %s",
		d.Strategy, d.Schedule, d.PlanSeed, d.Detail, d.Stats.String())
	if d.Trace != "" {
		fmt.Fprintf(&sb, "\n  trace tail:\n%s", indent(d.Trace, "    "))
	}
	return sb.String()
}

// Report is the outcome of a CheckStrategies sweep.
type Report struct {
	Runs        int
	Divergences []*Divergence
}

// Err returns the first divergence as an error, or nil when every run was
// bit-exact.
func (r *Report) Err() error {
	if len(r.Divergences) == 0 {
		return nil
	}
	return r.Divergences[0]
}

// RunResult is one chaos run's comparable output plus its full protocol
// trace (for replay comparison).
type RunResult struct {
	Strategy Strategy
	// Candidates is set by the wavefront strategies.
	Candidates []heuristics.Candidate
	// Alignments is set by StrategyPhase2.
	Alignments []*align.Alignment
	// Pre is set by StrategyPreprocess.
	Pre   *preprocess.Result
	Stats dsm.Stats
	// Trace is the complete protocol event log of the run.
	Trace []dsm.TraceEvent
	// Picks is the number of gate scheduling decisions taken.
	Picks int64
}

// inputs are the deterministic test fixtures a sweep runs on.
type inputs struct {
	s, t   bio.Sequence
	sc     bio.Scoring
	params heuristics.Params
	bc     wavefront.BlockConfig
	jobs   []phase2.Job
	ppCfg  preprocess.Config
}

// baselines are the sequential ground truths.
type baselines struct {
	cands  []heuristics.Candidate
	aligns []*align.Alignment
	pre    *preprocess.Result
}

// maxOracleJobs bounds the phase-2 job list so a sweep stays fast.
const maxOracleJobs = 12

func buildInputs(opt Options) (inputs, error) {
	g := bio.NewGenerator(opt.Seed)
	pair, err := g.HomologousPair(opt.SeqLen, bio.HomologyModel{
		Regions: 2, RegionLen: opt.SeqLen / 6, RegionJit: opt.SeqLen / 12,
		Divergence: bio.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		return inputs{}, fmt.Errorf("chaos: building input pair: %w", err)
	}
	in := inputs{
		s:      pair.S,
		t:      pair.T,
		sc:     bio.DefaultScoring(),
		params: heuristics.Params{Open: 12, Close: 12, MinScore: 30},
		bc:     wavefront.MultiplierConfig(2, 2, opt.Nprocs),
		// BandFixed keeps the band layout (and so the result matrix
		// shape) independent of nprocs, making the 1-node baseline
		// directly comparable.
		ppCfg: preprocess.Config{
			BandScheme: preprocess.BandFixed, BandSize: 64,
			ChunkSize: 64, ChunkGrowth: preprocess.GrowthFixed,
			ResultInterleave: 64, Threshold: 15, IOMode: preprocess.IONone,
		},
	}
	if err := in.bc.Validate(in.s.Len(), in.t.Len()); err != nil {
		return inputs{}, err
	}
	return in, nil
}

func buildBaselines(opt Options, in *inputs) (baselines, error) {
	var base baselines
	var err error
	base.cands, err = heuristics.Scan(in.s, in.t, in.sc, in.params)
	if err != nil {
		return base, fmt.Errorf("chaos: sequential scan: %w", err)
	}
	if len(base.cands) == 0 {
		return base, ErrWeakInput
	}
	in.jobs = phase2.JobsFromCandidates(base.cands)
	if len(in.jobs) > maxOracleJobs {
		in.jobs = in.jobs[:maxOracleJobs]
	}
	base.aligns, err = phase2.Sequential(in.s, in.t, in.sc, in.jobs)
	if err != nil {
		return base, fmt.Errorf("chaos: sequential phase 2: %w", err)
	}
	base.pre, err = preprocess.Run(1, cluster.Calibrated2005(), in.s, in.t, in.sc, in.ppCfg, nil)
	if err != nil {
		return base, fmt.Errorf("chaos: sequential preprocess: %w", err)
	}
	return base, nil
}

// runStrategy executes one strategy under the given hooks.
func runStrategy(st Strategy, opt Options, in *inputs, hooks *cluster.Hooks) (*RunResult, error) {
	cc := cluster.Calibrated2005()
	cc.Hooks = hooks
	out := &RunResult{Strategy: st}
	switch st {
	case StrategyNoBlock:
		res, err := wavefront.RunNoBlock(opt.Nprocs, cc, in.s, in.t, in.sc, in.params)
		if err != nil {
			return nil, err
		}
		out.Candidates, out.Stats = res.Candidates, res.Stats
	case StrategyBlocked:
		res, err := wavefront.RunBlocked(opt.Nprocs, cc, in.s, in.t, in.sc, in.params, in.bc)
		if err != nil {
			return nil, err
		}
		out.Candidates, out.Stats = res.Candidates, res.Stats
	case StrategyBlockedMP:
		res, err := wavefront.RunBlockedMP(opt.Nprocs, cc, in.s, in.t, in.sc, in.params, in.bc)
		if err != nil {
			return nil, err
		}
		out.Candidates, out.Stats = res.Candidates, res.Stats
	case StrategyPreprocess:
		res, err := preprocess.Run(opt.Nprocs, cc, in.s, in.t, in.sc, in.ppCfg, nil)
		if err != nil {
			return nil, err
		}
		out.Pre, out.Stats = res, res.Stats
	case StrategyPhase2:
		res, err := phase2.RunLockQueue(opt.Nprocs, cc, in.s, in.t, in.sc, in.jobs)
		if err != nil {
			return nil, err
		}
		out.Alignments, out.Stats = res.Alignments, res.Stats
	default:
		return nil, fmt.Errorf("chaos: unknown strategy %d", int(st))
	}
	return out, nil
}

// RunOne executes a single strategy under the chaos plan derived from
// planSeed, returning its comparable results and complete protocol trace.
// Two calls with identical (opt, planSeed) produce identical results and
// traces — the replayability contract the golden test pins down.
func RunOne(st Strategy, opt Options, planSeed int64) (*RunResult, error) {
	opt = opt.withDefaults()
	in, err := buildInputs(opt)
	if err != nil {
		return nil, err
	}
	if st == StrategyPhase2 {
		// Phase 2 needs the job list the baseline scan derives.
		if _, err := buildBaselines(opt, &in); err != nil {
			return nil, err
		}
	}
	return runOne(st, opt, &in, planSeed)
}

func runOne(st Strategy, opt Options, in *inputs, planSeed int64) (*RunResult, error) {
	plan := NewPlan(planSeed, opt.Nprocs, opt.Plan)
	tracer := &dsm.ListTracer{}
	hooks := plan.Hooks(tracer, opt.CacheSlots)
	gate := hooks.Gate.(*TokenGate)
	hooks.Recovery = opt.Recovery
	if hooks.Recovery.Retry.Seed == 0 {
		// Tie the retransmission backoff jitter to the plan seed so an
		// (opt, planSeed) pair replays the identical timing.
		hooks.Recovery.Retry.Seed = planSeed
	}
	if st != StrategyBlockedMP {
		// blockedmp has no DSM pages or checkpoints; kills do not apply.
		hooks.Crashes = opt.Kills
	}

	type outcome struct {
		res *RunResult
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		res, err := runStrategy(st, opt, in, hooks)
		ch <- outcome{res, err}
	}()
	select {
	case o := <-ch:
		if o.err != nil {
			return nil, o.err
		}
		o.res.Trace = tracer.Events()
		o.res.Picks = gate.Picks()
		return o.res, nil
	case <-time.After(opt.Timeout):
		// The run's goroutines are left parked; the caller is expected to
		// treat this as fatal for the schedule (and usually the process).
		return &RunResult{Strategy: st, Stats: dsm.Stats{}, Trace: tracer.Events()}, ErrHang
	}
}

// CheckStrategies is the differential oracle: for every requested
// strategy it explores opt.Schedules seeded schedules — fault delays,
// bounded reordering, permuted lock grants, barrier orders and eviction
// victims, all serialized behind a TokenGate — and asserts the parallel
// results are bit-exact against the sequential baselines (heuristics.Scan
// for the wavefronts, phase2.Sequential for phase 2, and a 1-node run for
// the pre-processing strategy). Every divergence carries the plan seed
// that replays it.
func CheckStrategies(opt Options) (*Report, error) {
	opt = opt.withDefaults()
	in, err := buildInputs(opt)
	if err != nil {
		return nil, err
	}
	base, err := buildBaselines(opt, &in)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	for _, st := range opt.Strategies {
		if st < 0 || st >= NumStrategies {
			return nil, fmt.Errorf("chaos: unknown strategy %d", int(st))
		}
		for sched := 0; sched < opt.Schedules; sched++ {
			planSeed := PlanSeed(opt.Seed, st, sched)
			rep.Runs++
			res, err := runOne(st, opt, &in, planSeed)
			if err != nil {
				d := &Divergence{Strategy: st, Schedule: sched, PlanSeed: planSeed,
					Detail: err.Error()}
				if res != nil {
					d.Trace = traceTail(res.Trace, opt.TraceTail)
					d.Stats = res.Stats
				}
				rep.Divergences = append(rep.Divergences, d)
				continue
			}
			if detail := compare(st, res, &base); detail != "" {
				rep.Divergences = append(rep.Divergences, &Divergence{
					Strategy: st, Schedule: sched, PlanSeed: planSeed,
					Detail: detail,
					Trace:  traceTail(res.Trace, opt.TraceTail),
					Stats:  res.Stats,
				})
			}
		}
	}
	return rep, nil
}

// compare checks one run against the baseline, returning "" when
// bit-exact and a description of the first mismatch otherwise.
func compare(st Strategy, res *RunResult, base *baselines) string {
	switch st {
	case StrategyNoBlock, StrategyBlocked, StrategyBlockedMP:
		return compareCandidates(res.Candidates, base.cands)
	case StrategyPhase2:
		return compareAlignments(res.Alignments, base.aligns)
	case StrategyPreprocess:
		return comparePreprocess(res.Pre, base.pre)
	default:
		return fmt.Sprintf("no comparator for strategy %d", int(st))
	}
}

func compareCandidates(got, want []heuristics.Candidate) string {
	if len(got) != len(want) {
		return fmt.Sprintf("candidate count %d, sequential found %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return fmt.Sprintf("candidate %d: got %+v, sequential %+v", i, got[i], want[i])
		}
	}
	return ""
}

func compareAlignments(got, want []*align.Alignment) string {
	if len(got) != len(want) {
		return fmt.Sprintf("alignment count %d, sequential produced %d", len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if (g == nil) != (w == nil) {
			return fmt.Sprintf("alignment %d: nil mismatch", i)
		}
		if g == nil {
			continue
		}
		if g.SBegin != w.SBegin || g.SEnd != w.SEnd || g.TBegin != w.TBegin ||
			g.TEnd != w.TEnd || g.Score != w.Score {
			return fmt.Sprintf("alignment %d: got [%d,%d]x[%d,%d] score %d, sequential [%d,%d]x[%d,%d] score %d",
				i, g.SBegin, g.SEnd, g.TBegin, g.TEnd, g.Score,
				w.SBegin, w.SEnd, w.TBegin, w.TEnd, w.Score)
		}
		if !bytes.Equal(opsBytes(g.Ops), opsBytes(w.Ops)) {
			return fmt.Sprintf("alignment %d: edit scripts differ", i)
		}
	}
	return ""
}

func opsBytes(ops []align.Op) []byte {
	out := make([]byte, len(ops))
	for i, op := range ops {
		out[i] = byte(op)
	}
	return out
}

func comparePreprocess(got, want *preprocess.Result) string {
	if got == nil || want == nil {
		return "missing preprocess result"
	}
	if got.TotalHits != want.TotalHits {
		return fmt.Sprintf("total hits %d, sequential %d", got.TotalHits, want.TotalHits)
	}
	if got.BestScore != want.BestScore || got.BestI != want.BestI || got.BestJ != want.BestJ {
		return fmt.Sprintf("best (%d at %d,%d), sequential (%d at %d,%d)",
			got.BestScore, got.BestI, got.BestJ, want.BestScore, want.BestI, want.BestJ)
	}
	if len(got.ResultMatrix) != len(want.ResultMatrix) {
		return fmt.Sprintf("result matrix has %d bands, sequential %d", len(got.ResultMatrix), len(want.ResultMatrix))
	}
	for b := range want.ResultMatrix {
		if len(got.ResultMatrix[b]) != len(want.ResultMatrix[b]) {
			return fmt.Sprintf("band %d has %d groups, sequential %d", b, len(got.ResultMatrix[b]), len(want.ResultMatrix[b]))
		}
		for g := range want.ResultMatrix[b] {
			if got.ResultMatrix[b][g] != want.ResultMatrix[b][g] {
				return fmt.Sprintf("result matrix [%d][%d] = %d, sequential %d",
					b, g, got.ResultMatrix[b][g], want.ResultMatrix[b][g])
			}
		}
	}
	return ""
}

// traceTail renders the last max events of a trace.
func traceTail(evs []dsm.TraceEvent, max int) string {
	var lt dsm.ListTracer
	for _, ev := range evs {
		lt.Trace(ev)
	}
	return lt.DumpTail(max)
}

func indent(s, prefix string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}
