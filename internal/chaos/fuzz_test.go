package chaos

import (
	"errors"
	"testing"
	"time"

	"genomedsm/internal/cluster"
)

// FuzzFaultPlan throws arbitrary delay, jitter and reorder parameters at
// the oracle and asserts the invariant the whole harness exists to
// defend: no legal fault plan may change a strategy's result, and every
// run terminates. The corpus stays cheap (one schedule, the non-blocked
// wavefront, a small cluster) so the fuzzer spends its budget on plan
// parameters, not on the DP kernel.
func FuzzFaultPlan(f *testing.F) {
	f.Add(int64(1), 1e-4, 4e-4, 1e-4, 4e-4, 5e-5, 2e-4, 3)
	f.Add(int64(2), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0)
	f.Add(int64(3), 5e-3, 0.0, 0.0, 1e-2, 0.0, 0.0, 17)
	f.Add(int64(-9), -1.0, 1e6, 1e-9, -5.0, 2e-4, 1e-7, -4)
	f.Fuzz(func(t *testing.T, seed int64,
		fetchBase, fetchJit, diffBase, diffJit, noticeBase, noticeJit float64,
		window int) {
		var plan PlanConfig
		plan.Delays[cluster.MsgPageFetch] = clampSpec(fetchBase, fetchJit)
		plan.Delays[cluster.MsgDiff] = clampSpec(diffBase, diffJit)
		plan.Delays[cluster.MsgNotice] = clampSpec(noticeBase, noticeJit)
		if window < 0 {
			window = 0
		}
		if window > 64 {
			window = 64
		}
		plan.ReorderWindow = window

		opt := Options{
			Seed: seed, Schedules: 1, Nprocs: 3, SeqLen: 240,
			Strategies: []Strategy{StrategyNoBlock},
			Plan:       plan, UsePlanZero: true, // honour an all-zero plan as-is
			Timeout: fuzzTimeout(),
		}
		rep, err := CheckStrategies(opt)
		if errors.Is(err, ErrWeakInput) {
			t.Skip("generated pair has no candidates; nothing to compare")
		}
		if err != nil {
			t.Fatalf("oracle setup failed: %v", err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("fault plan changed the result: %v", err)
		}
	})
}

// clampSpec keeps fuzzed delays non-negative and finite, and small enough
// that the simulated virtual times stay in a sane range (delays only
// shift the clock; huge values just waste fuzz budget).
func clampSpec(base, jitter float64) DelaySpec {
	sane := func(v float64) float64 {
		if v != v || v < 0 { // NaN or negative
			return 0
		}
		if v > 1.0 {
			return 1.0
		}
		return v
	}
	return DelaySpec{Base: sane(base), Jitter: sane(jitter)}
}

// fuzzTimeout bounds each fuzz case; -short (as the CI chaos stage runs
// it) tightens the budget further so a hang is caught quickly.
func fuzzTimeout() time.Duration {
	if testing.Short() {
		return 20 * time.Second
	}
	return 60 * time.Second
}
