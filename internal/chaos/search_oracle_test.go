package chaos

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
	"genomedsm/internal/shard"
)

func TestCheckShardedSearchClean(t *testing.T) {
	rep, err := CheckShardedSearch(SearchOptions{Seed: 1, Schedules: 2, KillShard: NoKill})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Runs != 2 {
		t.Fatalf("ran %d schedules, want 2", rep.Runs)
	}
}

func TestCheckShardedSearchFaults(t *testing.T) {
	rep, err := CheckShardedSearch(SearchOptions{
		Seed: 2, Schedules: 2, KillShard: NoKill,
		Loss: 0.2, Dup: 0.1, Reorder: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.Stats.MsgsLost+rep.Stats.MsgsDuped+rep.Stats.MsgsReordered == 0 {
		t.Error("fault schedule injected nothing")
	}
}

func TestCheckShardedSearchKill(t *testing.T) {
	rep, err := CheckShardedSearch(SearchOptions{Seed: 3, Schedules: 2, KillShard: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	// The oracle itself asserts the counters; double-check the proof
	// reached the report.
	if rep.Stats.Kills < 1 || rep.Stats.Reassigns < 1 {
		t.Fatalf("kill sweep left no recovery evidence: %+v", rep.Stats)
	}
	if _, err := CheckShardedSearch(SearchOptions{Seed: 3, Shards: 2, KillShard: 7}); err == nil {
		t.Fatal("out-of-range kill shard accepted")
	}
}

// TestRunShardedOnceReplays pins the replayability contract: the same
// (options, fault seed) pair reproduces identical results, and both
// runs actually drew faults. (Per-message draws are a pure function of
// (seed, link, send ordinal); aggregate counters can differ slightly
// because retry and heartbeat send counts are timing-dependent.)
func TestRunShardedOnceReplays(t *testing.T) {
	opt := SearchOptions{Seed: 5, KillShard: NoKill, Loss: 0.3, Dup: 0.1}
	seed := SearchPlanSeed(opt.Seed, 1)
	res1, st1, err := RunShardedOnce(opt, seed)
	if err != nil {
		t.Fatal(err)
	}
	res2, st2, err := RunShardedOnce(opt, seed)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1, res2) {
		t.Fatal("same fault seed produced different results")
	}
	if st1.MsgsLost == 0 || st2.MsgsLost == 0 {
		t.Fatalf("a lossy replay drew no losses: %d / %d", st1.MsgsLost, st2.MsgsLost)
	}
}

// FuzzShardPlan fuzzes partition shapes — empty shards, single-record
// spans, k larger than any shard, databases of all-identical lengths —
// and asserts the sharded search stays bit-identical to the single-node
// oracle under every valid plan the inputs decode to.
func FuzzShardPlan(f *testing.F) {
	f.Add(int64(1), uint8(12), uint8(3), uint8(5), false, []byte{4, 8})
	f.Add(int64(2), uint8(1), uint8(4), uint8(3), false, []byte{})
	f.Add(int64(3), uint8(16), uint8(5), uint8(40), true, []byte{0, 0, 1, 16})
	f.Add(int64(4), uint8(9), uint8(2), uint8(1), true, []byte{9})
	f.Fuzz(func(t *testing.T, seed int64, n, shards, k uint8, identical bool, cuts []byte) {
		nn := int(n)%24 + 1
		ns := int(shards)%6 + 1
		kk := int(k)%48 + 1
		g := bio.NewGenerator(seed)
		recs := make([]bio.Record, nn)
		for i := range recs {
			rl := 150
			if !identical {
				rl = 60 + (i*37)%120
			}
			recs[i] = bio.Record{ID: fmt.Sprintf("r%d", i), Seq: g.Random(rl)}
		}
		q := g.Random(100)
		db := search.NewDB(recs)

		// Decode the fuzz bytes into a custom plan: each byte is a cut
		// rank; sorted and clamped they become span boundaries. Invalid
		// plans (wrong count after dedup) fall back to the balanced
		// planner — the fuzz target's job is exploring valid shapes, not
		// re-testing ValidateSpans rejection.
		spans := decodeCuts(cuts, nn, ns)
		if spans != nil {
			if err := shard.ValidateSpans(spans, nn); err != nil {
				t.Fatalf("decodeCuts produced invalid plan %v: %v", spans, err)
			}
		}

		opt := search.Options{Prune: true, TopK: kk}
		want, err := search.RunCtx(context.Background(), q, db, opt)
		if err != nil {
			t.Fatal(err)
		}
		c, err := shard.New(db, shard.Options{Shards: ns, Spans: spans, Lease: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		got, err := c.Search(context.Background(), q, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Hits, want.Hits) {
			t.Fatalf("plan %v (n=%d shards=%d k=%d identical=%v):\n got %+v\nwant %+v",
				spans, nn, ns, kk, identical, got.Hits, want.Hits)
		}
		if got.Searched != want.Searched || got.Cells != want.Cells {
			t.Fatalf("plan %v: searched/cells %d/%d, single-node %d/%d",
				spans, got.Searched, got.Cells, want.Searched, want.Cells)
		}
	})
}

// decodeCuts turns fuzz bytes into a valid ns-span partition of [0, n),
// or nil (meaning: use the balanced planner) when the bytes don't
// supply enough distinct interior cuts.
func decodeCuts(cuts []byte, n, ns int) []shard.Span {
	if ns == 1 {
		return nil
	}
	seen := map[int]bool{}
	var pts []int
	for _, b := range cuts {
		p := int(b) % (n + 1)
		if !seen[p] {
			seen[p] = true
			pts = append(pts, p)
		}
		if len(pts) == ns-1 {
			break
		}
	}
	if len(pts) < ns-1 {
		return nil
	}
	for i := range pts { // insertion sort; tiny
		for j := i; j > 0 && pts[j] < pts[j-1]; j-- {
			pts[j], pts[j-1] = pts[j-1], pts[j]
		}
	}
	spans := make([]shard.Span, ns)
	lo := 0
	for i := 0; i < ns; i++ {
		hi := n
		if i < ns-1 {
			hi = pts[i]
		}
		spans[i] = shard.Span{Lo: lo, Hi: hi}
		lo = hi
	}
	return spans
}
