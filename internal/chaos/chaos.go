// Package chaos is a seeded, deterministic fault-injection and
// schedule-exploration harness for the DSM protocol. It plugs into
// cluster.Config.Hooks — the alignment strategies pass the config through
// to dsm.NewSystem untouched, so any strategy can be run adversarially
// without a signature change — and perturbs three things:
//
//   - message timing: per-class extra delay and jitter on page fetches,
//     diff flushes and write-notice deliveries (Plan.Delay);
//   - delivery order: bounded reordering of same-class message batches
//     (Plan.Permute) and of the protocol's own scheduling tie-breaks —
//     lock-grant order, barrier release order, cache-eviction victims
//     (Plan's cluster.ScheduleControl side);
//   - goroutine interleaving: a TokenGate serializes the node goroutines
//     and picks the next runnable node from the same seed, so an entire
//     run is a pure function of (inputs, seed) and any failure replays
//     byte-for-byte.
//
// CheckStrategies is the differential oracle built on top: it runs the
// parallel alignment strategies under many explored schedules and asserts
// their results stay bit-exact against the sequential baselines.
package chaos

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"genomedsm/internal/cluster"
)

// DelaySpec is the injected delay for one message class: Base extra
// virtual seconds on every message plus a uniform jitter in [0, Jitter).
type DelaySpec struct {
	Base   float64
	Jitter float64
}

// PlanConfig parameterizes a fault plan.
type PlanConfig struct {
	// Delays holds the per-class injected delays, indexed by
	// cluster.MsgClass.
	Delays [cluster.NumMsgClasses]DelaySpec
	// ReorderWindow bounds delivery reordering: a batch of same-class
	// messages is permuted so no message is displaced more than this many
	// positions from its protocol-default slot. Zero disables reordering.
	ReorderWindow int
	// Loss holds the per-class per-attempt loss probability: each
	// transmission attempt of a class-c message is independently lost with
	// probability Loss[c], up to MaxLost consecutive losses (delivery is
	// never suppressed forever — the DSM is at-least-once with dedup).
	Loss [cluster.NumMsgClasses]float64
	// Dup holds the per-class probability that a delivered message
	// arrives twice (the duplicate suppressed by the receiver's sequence
	// numbers).
	Dup [cluster.NumMsgClasses]float64
	// MaxLost caps consecutive lost attempts per message (default 3 when
	// any loss probability is set).
	MaxLost int
}

// DefaultPlanConfig returns delays on the scale of the calibrated 2005
// network's message costs (hundreds of microseconds) with a modest
// reorder window — enough to shuffle timing-dependent tie-breaks without
// drowning the virtual clock.
func DefaultPlanConfig() PlanConfig {
	var cfg PlanConfig
	cfg.Delays[cluster.MsgPageFetch] = DelaySpec{Base: 1e-4, Jitter: 4e-4}
	cfg.Delays[cluster.MsgDiff] = DelaySpec{Base: 1e-4, Jitter: 4e-4}
	cfg.Delays[cluster.MsgNotice] = DelaySpec{Base: 5e-5, Jitter: 2e-4}
	cfg.ReorderWindow = 3
	return cfg
}

// Plan is a seeded fault plan: it implements both cluster.FaultPlan and
// cluster.ScheduleControl. Every answer is a hash of the seed and a
// per-(node, class) call counter, so what a node experiences depends only
// on its own message sequence — never on how the nodes' calls interleave.
// (The global lock/barrier pick counters are safe for the same reason the
// gate exists: schedule-control calls are made by the token holder, so
// their order is itself deterministic.)
type Plan struct {
	seed  int64
	nodes int
	cfg   PlanConfig

	delayCnt []atomic.Uint64 // class*nodes + node
	permCnt  []atomic.Uint64 // class*nodes + node
	evictCnt []atomic.Uint64 // node
	loseCnt  []atomic.Uint64 // class*nodes + node
	dupCnt   []atomic.Uint64 // class*nodes + node
	lockCnt  atomic.Uint64
	barrCnt  atomic.Uint64
}

// NewPlan builds a plan for a cluster of nodes from a single seed.
func NewPlan(seed int64, nodes int, cfg PlanConfig) *Plan {
	if nodes < 1 {
		nodes = 1
	}
	return &Plan{
		seed:     seed,
		nodes:    nodes,
		cfg:      cfg,
		delayCnt: make([]atomic.Uint64, int(cluster.NumMsgClasses)*nodes),
		permCnt:  make([]atomic.Uint64, int(cluster.NumMsgClasses)*nodes),
		evictCnt: make([]atomic.Uint64, nodes),
		loseCnt:  make([]atomic.Uint64, int(cluster.NumMsgClasses)*nodes),
		dupCnt:   make([]atomic.Uint64, int(cluster.NumMsgClasses)*nodes),
	}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Delay implements cluster.FaultPlan.
func (p *Plan) Delay(class cluster.MsgClass, node int) float64 {
	spec := p.cfg.Delays[class]
	if spec.Base <= 0 && spec.Jitter <= 0 {
		return 0
	}
	k := p.delayCnt[int(class)*p.nodes+node].Add(1)
	u := unit(mix64(uint64(p.seed), 0xDE1A, uint64(class), uint64(node), k))
	return spec.Base + spec.Jitter*u
}

// Permute implements cluster.FaultPlan: consecutive runs of at most
// ReorderWindow+1 messages are shuffled, so no message is displaced more
// than ReorderWindow positions.
func (p *Plan) Permute(class cluster.MsgClass, node, k int) []int {
	w := p.cfg.ReorderWindow
	if w <= 0 || k < 2 {
		return nil
	}
	c := p.permCnt[int(class)*p.nodes+node].Add(1)
	rng := rand.New(rand.NewSource(int64(mix64(uint64(p.seed), 0x9E12, uint64(class), uint64(node), c))))
	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	for lo := 0; lo < k; lo += w + 1 {
		hi := lo + w + 1
		if hi > k {
			hi = k
		}
		rng.Shuffle(hi-lo, func(a, b int) {
			perm[lo+a], perm[lo+b] = perm[lo+b], perm[lo+a]
		})
	}
	return perm
}

// Lose implements cluster.LossPlan: a capped geometric draw — each
// attempt of the node's next class message is independently lost with
// probability Loss[class], at most MaxLost (default 3) times.
func (p *Plan) Lose(class cluster.MsgClass, node int) int {
	prob := p.cfg.Loss[class]
	if prob <= 0 {
		return 0
	}
	cap := p.cfg.MaxLost
	if cap <= 0 {
		cap = 3
	}
	k := p.loseCnt[int(class)*p.nodes+node].Add(1)
	lost := 0
	for lost < cap {
		u := unit(mix64(uint64(p.seed), 0x105E, uint64(class), uint64(node), k, uint64(lost)))
		if u >= prob {
			break
		}
		lost++
	}
	return lost
}

// Duplicate implements cluster.LossPlan: a single per-message draw
// against Dup[class].
func (p *Plan) Duplicate(class cluster.MsgClass, node int) bool {
	prob := p.cfg.Dup[class]
	if prob <= 0 {
		return false
	}
	k := p.dupCnt[int(class)*p.nodes+node].Add(1)
	return unit(mix64(uint64(p.seed), 0xD0B1, uint64(class), uint64(node), k)) < prob
}

// PickLockGrant implements cluster.ScheduleControl.
func (p *Plan) PickLockGrant(lock, k int) int {
	if k < 2 {
		return 0
	}
	c := p.lockCnt.Add(1)
	return int(mix64(uint64(p.seed), 0x10C4, uint64(lock), c) % uint64(k))
}

// PickBarrierOrder implements cluster.ScheduleControl.
func (p *Plan) PickBarrierOrder(k int) []int {
	if k < 2 {
		return nil
	}
	c := p.barrCnt.Add(1)
	rng := rand.New(rand.NewSource(int64(mix64(uint64(p.seed), 0xBA22, c))))
	return rng.Perm(k)
}

// PickEvictVictim implements cluster.ScheduleControl.
func (p *Plan) PickEvictVictim(node int, pages []int) int {
	if len(pages) < 2 {
		return 0
	}
	c := p.evictCnt[node].Add(1)
	return int(mix64(uint64(p.seed), 0xE71C, uint64(node), c) % uint64(len(pages)))
}

// Hooks bundles the plan, a fresh TokenGate on the same seed, and an
// optional observer into the cluster.Hooks a chaos run rides on.
// cacheSlots > 0 additionally squeezes the per-node page cache to force
// replacement traffic.
func (p *Plan) Hooks(observer any, cacheSlots int) *cluster.Hooks {
	return &cluster.Hooks{
		Faults:     p,
		Sched:      p,
		Gate:       NewTokenGate(p.nodes, p.seed),
		Observer:   observer,
		CacheSlots: cacheSlots,
		Loss:       p,
	}
}

// PlanSeed derives the per-run plan seed CheckStrategies uses for a
// (base seed, strategy, schedule index) triple; exported so a failure
// report's schedule can be replayed in isolation.
func PlanSeed(seed int64, st Strategy, schedule int) int64 {
	return int64(mix64(uint64(seed), 0x5EED, uint64(st), uint64(schedule)))
}

// mix64 hashes a word sequence (splitmix64-style finalizer per word).
func mix64(words ...uint64) uint64 {
	h := uint64(0x9E3779B97F4A7C15)
	for _, w := range words {
		h ^= w
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
		h *= 0x94D049BB133111EB
		h ^= h >> 31
	}
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// String renders the config compactly for reports.
func (c PlanConfig) String() string {
	s := fmt.Sprintf("fetch=%g+%g diff=%g+%g notice=%g+%g window=%d",
		c.Delays[cluster.MsgPageFetch].Base, c.Delays[cluster.MsgPageFetch].Jitter,
		c.Delays[cluster.MsgDiff].Base, c.Delays[cluster.MsgDiff].Jitter,
		c.Delays[cluster.MsgNotice].Base, c.Delays[cluster.MsgNotice].Jitter,
		c.ReorderWindow)
	for class := cluster.MsgClass(0); class < cluster.NumMsgClasses; class++ {
		if c.Loss[class] > 0 {
			s += fmt.Sprintf(" loss[%s]=%g", class, c.Loss[class])
		}
		if c.Dup[class] > 0 {
			s += fmt.Sprintf(" dup[%s]=%g", class, c.Dup[class])
		}
	}
	return s
}
