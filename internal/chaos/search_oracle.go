package chaos

import (
	"context"
	"fmt"
	"strings"
	"time"

	"genomedsm/internal/bio"
	"genomedsm/internal/search"
	"genomedsm/internal/shard"
)

// SearchOptions configures a CheckShardedSearch sweep: a seeded
// differential oracle for the distributed database-search layer. Every
// schedule derives its own transport fault seed from (Seed, schedule),
// so a divergence report names the exact seed that replays it.
type SearchOptions struct {
	// Seed is the master seed: it derives the synthetic database, the
	// queries, and (via SearchPlanSeed) each schedule's fault seed.
	Seed int64
	// Schedules is how many fault schedules to explore (default 4).
	Schedules int
	// Shards is the cluster width (default 4).
	Shards int
	// Queries per batch (default 2).
	Queries int
	// DBSize is the synthetic database record count (default 48);
	// QueryLen and BaseLen shape the generated sequences (defaults 220
	// and 320).
	DBSize, QueryLen, BaseLen int
	// Loss, Dup and Reorder are per-message transport fault
	// probabilities in [0, 1).
	Loss, Dup, Reorder float64
	// KillShard, when ≥ 0, crashes that worker after KillAfter lane
	// groups of scan progress (KillAfter defaults to 1). The oracle then
	// also asserts the recovery counters prove a kill, a detected death
	// and a reassignment happened. Set NoKill (-1) for a message-fault
	// or clean sweep — the zero value names shard 0, so always set it.
	KillShard int
	KillAfter int
	// Search is the option shape under test (default Prune with TopK 7,
	// exercising the gossiped floor).
	Search *search.Options
}

func (o SearchOptions) withDefaults() SearchOptions {
	if o.Schedules <= 0 {
		o.Schedules = 4
	}
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Queries <= 0 {
		o.Queries = 2
	}
	if o.DBSize <= 0 {
		o.DBSize = 48
	}
	if o.QueryLen <= 0 {
		o.QueryLen = 220
	}
	if o.BaseLen <= 0 {
		o.BaseLen = 320
	}
	if o.KillAfter <= 0 {
		o.KillAfter = 1
	}
	if o.Search == nil {
		o.Search = &search.Options{Prune: true, TopK: 7}
	}
	return o
}

// NoKill is the SearchOptions.KillShard value for sweeps without a
// crash schedule.
const NoKill = -1

// SearchPlanSeed derives the fault seed of one schedule. Exported so a
// failure report's seed can be replayed directly against RunShardedOnce.
func SearchPlanSeed(seed int64, schedule int) int64 {
	return int64(hash2(uint64(seed), 0x5ea2c4_0000+uint64(schedule)))
}

// SearchDivergence is one schedule whose sharded result was not
// bit-identical to the single-node scan (or errored, or whose recovery
// counters failed to prove the configured fault fired).
type SearchDivergence struct {
	Schedule  int
	FaultSeed int64
	Detail    string
	Stats     shard.Stats
}

// Error renders the divergence as a replayable failure report.
func (d *SearchDivergence) Error() string {
	return fmt.Sprintf(
		"sharded search divergence: schedule=%d faultSeed=%d\n  %s\n  stats: kills=%d dead=%d reassigns=%d retries=%d lost=%d duped=%d reordered=%d",
		d.Schedule, d.FaultSeed, d.Detail,
		d.Stats.Kills, d.Stats.DeadDetected, d.Stats.Reassigns, d.Stats.Retries,
		d.Stats.MsgsLost, d.Stats.MsgsDuped, d.Stats.MsgsReordered)
}

// SearchReport is the outcome of a CheckShardedSearch sweep.
type SearchReport struct {
	Runs        int
	Divergences []*SearchDivergence
	// Stats aggregates the last schedule's counters (handy for CLI
	// summaries; per-divergence stats ride on the divergence itself).
	Stats shard.Stats
}

// Err returns the first divergence as an error, or nil when every
// schedule was bit-exact.
func (r *SearchReport) Err() error {
	if len(r.Divergences) == 0 {
		return nil
	}
	return r.Divergences[0]
}

// searchInputs synthesizes the query batch and database for a sweep:
// noise records with mutated query fragments planted every eighth, the
// same population the CLI's synthetic mode scans.
func searchInputs(opt SearchOptions) ([]search.BatchQuery, *search.DB) {
	g := bio.NewGenerator(opt.Seed)
	queries := make([]search.BatchQuery, opt.Queries)
	for i := range queries {
		queries[i] = search.BatchQuery{Seq: g.Random(opt.QueryLen)}
	}
	q := queries[0].Seq
	recs := make([]bio.Record, 0, opt.DBSize)
	for i := 0; i < opt.DBSize; i++ {
		if i%8 == 3 && opt.QueryLen >= 2 {
			half := opt.QueryLen / 2
			frag := q[(i*13)%half : half+(i*29)%(half+1)]
			recs = append(recs, bio.Record{
				ID: fmt.Sprintf("hom%d", i), Seq: g.MutatedCopy(frag, bio.DefaultMutationModel()),
			})
			continue
		}
		rl := opt.BaseLen/2 + (i*37)%(opt.BaseLen+1)
		recs = append(recs, bio.Record{ID: fmt.Sprintf("rec%d", i), Seq: g.Random(rl)})
	}
	return queries, search.NewDB(recs)
}

// clusterOptions maps a sweep config onto cluster timing: kill
// schedules need a short lease so the death is detected promptly;
// pure message faults keep a long lease (loss can only delay
// heartbeats, and a false-positive death is legal but noisy).
func clusterOptions(opt SearchOptions, faultSeed int64) shard.Options {
	co := shard.Options{
		Shards:  opt.Shards,
		Timeout: 40 * time.Millisecond,
		Lease:   10 * time.Second,
	}
	if opt.Loss > 0 || opt.Dup > 0 || opt.Reorder > 0 {
		co.Faults = &shard.FaultConfig{
			Seed: faultSeed, Loss: opt.Loss, Dup: opt.Dup, Reorder: opt.Reorder,
			DelayBase: 100 * time.Microsecond, DelayJitter: time.Millisecond,
		}
	}
	if opt.KillShard >= 0 {
		co.Lease = 250 * time.Millisecond
		co.Heartbeat = 25 * time.Millisecond
		co.Kills = []shard.Kill{{Shard: opt.KillShard, AfterGroups: opt.KillAfter}}
	}
	return co
}

// RunShardedOnce replays a single schedule: same (opt, faultSeed) pair,
// same transport drops and crashes, same result. Returns the sharded
// batch results and the cluster's final counters.
func RunShardedOnce(opt SearchOptions, faultSeed int64) ([]search.BatchResult, shard.Stats, error) {
	opt = opt.withDefaults()
	queries, db := searchInputs(opt)
	c, err := shard.New(db, clusterOptions(opt, faultSeed))
	if err != nil {
		return nil, shard.Stats{}, err
	}
	defer c.Close()
	res, err := c.SearchBatch(context.Background(), queries, *opt.Search)
	return res, c.Stats(), err
}

// CheckShardedSearch is the differential oracle for the shard layer:
// it runs opt.Schedules seeded fault schedules — message loss,
// duplication, reordering and mid-scan worker kills — and asserts each
// sharded batch result is bit-identical (scores, coordinates,
// tie-breaks, Searched, Cells) to a fault-free single-node
// search.RunBatch over the same database. When a kill is configured it
// further asserts the recovery counters prove the crash, the detected
// death and the span reassignment actually occurred, so a vacuous pass
// (kill never fired) is itself a failure.
func CheckShardedSearch(opt SearchOptions) (*SearchReport, error) {
	opt = opt.withDefaults()
	if opt.KillShard >= opt.Shards {
		return nil, fmt.Errorf("chaos: kill shard %d out of range of %d shards", opt.KillShard, opt.Shards)
	}
	queries, db := searchInputs(opt)
	want, err := search.RunBatch(context.Background(), queries, db, *opt.Search)
	if err != nil {
		return nil, fmt.Errorf("chaos: single-node baseline: %w", err)
	}
	rep := &SearchReport{}
	for sched := 0; sched < opt.Schedules; sched++ {
		faultSeed := SearchPlanSeed(opt.Seed, sched)
		rep.Runs++
		got, st, err := RunShardedOnce(opt, faultSeed)
		rep.Stats = st
		if err != nil {
			rep.Divergences = append(rep.Divergences, &SearchDivergence{
				Schedule: sched, FaultSeed: faultSeed, Detail: err.Error(), Stats: st})
			continue
		}
		if detail := compareBatches(got, want); detail != "" {
			rep.Divergences = append(rep.Divergences, &SearchDivergence{
				Schedule: sched, FaultSeed: faultSeed, Detail: detail, Stats: st})
			continue
		}
		if opt.KillShard >= 0 {
			if detail := proveRecovery(st); detail != "" {
				rep.Divergences = append(rep.Divergences, &SearchDivergence{
					Schedule: sched, FaultSeed: faultSeed, Detail: detail, Stats: st})
			}
		}
	}
	return rep, nil
}

// compareBatches checks sharded batch results against the single-node
// baseline, returning "" when bit-exact.
func compareBatches(got, want []search.BatchResult) string {
	if len(got) != len(want) {
		return fmt.Sprintf("%d batch results, single-node produced %d", len(got), len(want))
	}
	for i := range want {
		if (got[i].Err == nil) != (want[i].Err == nil) {
			return fmt.Sprintf("query %d: err %v, single-node err %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		g, w := got[i].Result, want[i].Result
		if g.Searched != w.Searched || g.Cells != w.Cells {
			return fmt.Sprintf("query %d: searched/cells %d/%d, single-node %d/%d",
				i, g.Searched, g.Cells, w.Searched, w.Cells)
		}
		if len(g.Hits) != len(w.Hits) {
			return fmt.Sprintf("query %d: %d hits, single-node found %d", i, len(g.Hits), len(w.Hits))
		}
		for h := range w.Hits {
			if g.Hits[h] != w.Hits[h] {
				return fmt.Sprintf("query %d hit %d: got %+v, single-node %+v", i, h, g.Hits[h], w.Hits[h])
			}
		}
	}
	return ""
}

// proveRecovery asserts the counters witness the configured kill: a
// crash recorded, the lease expiry seen, and the lost span replayed on
// a survivor.
func proveRecovery(st shard.Stats) string {
	var missing []string
	if st.Kills < 1 {
		missing = append(missing, "no kill recorded")
	}
	if st.DeadDetected < 1 {
		missing = append(missing, "death never detected")
	}
	if st.Reassigns < 1 {
		missing = append(missing, "span never reassigned")
	}
	if len(missing) == 0 {
		return ""
	}
	return "recovery not proven: " + strings.Join(missing, ", ")
}

// hash2 mixes two words with the splitmix64 finalizer (the same family
// the shard transport uses for its fault draws).
func hash2(a, b uint64) uint64 {
	x := a*0x9e3779b97f4a7c15 ^ b
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
