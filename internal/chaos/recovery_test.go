package chaos

import (
	"testing"

	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/recovery"
)

// crashStrategies are the strategies the kill regression covers —
// everything DSM-backed (blockedmp is timing-only under faults and never
// receives kills).
var crashStrategies = []Strategy{StrategyNoBlock, StrategyBlocked, StrategyPreprocess, StrategyPhase2}

// TestKillEachNodeBitExact is the crash-recovery regression: every
// DSM-backed strategy, killed once at every node id, must recover from
// its checkpoint and still produce results bit-exact against the
// sequential baseline.
func TestKillEachNodeBitExact(t *testing.T) {
	opt := quickOptions(21)
	opt.Schedules = 1
	for _, st := range crashStrategies {
		stOpt := opt
		stOpt.Strategies = []Strategy{st}
		// A fault-free pre-run shows which nodes reach a recovery point at
		// all: a kill scheduled before any crash-induced divergence fires
		// iff the victim checkpoints in the fault-free schedule (phase 2's
		// dynamic queue can starve a node of jobs on small inputs).
		freeOpt := stOpt
		freeOpt.Recovery.ForceCheckpoints = true // surface recovery points without a kill
		free, err := RunOne(st, freeOpt, PlanSeed(stOpt.Seed, st, 0))
		if err != nil {
			t.Fatalf("%v fault-free run: %v", st, err)
		}
		reaches := make([]bool, stOpt.Nprocs)
		for _, ev := range free.Trace {
			if ev.Kind == dsm.TraceCheckpoint {
				reaches[ev.Node] = true
			}
		}
		killable := 0
		for victim := 0; victim < stOpt.Nprocs; victim++ {
			o := stOpt
			o.Kills = []recovery.Kill{{Node: victim, Point: 1}}
			rep, err := CheckStrategies(o)
			if err != nil {
				t.Fatalf("%v kill %d: %v", st, victim, err)
			}
			if err := rep.Err(); err != nil {
				t.Fatalf("%v kill %d: %v", st, victim, err)
			}
			res, err := RunOne(st, o, PlanSeed(o.Seed, st, 0))
			if err != nil {
				t.Fatalf("%v kill %d rerun: %v", st, victim, err)
			}
			want := int64(0)
			if reaches[victim] {
				want = 1
				killable++
			}
			if res.Stats.Crashes != want || res.Stats.Recoveries != want {
				t.Errorf("%v kill %d: crashes=%d recoveries=%d, want %d/%d — %s",
					st, victim, res.Stats.Crashes, res.Stats.Recoveries, want, want, res.Stats.String())
			}
		}
		// The regression is vacuous if nobody could be killed.
		if killable == 0 {
			t.Errorf("%v: no node reaches a recovery point; the kill regression tested nothing", st)
		}
	}
}

// TestCrashTraceExplainsRecovery pins satellite coverage of the replay
// trace: a kill-and-recover run records the crash, the lease-expiry
// detection, the restore and the restart, in causal order, and the same
// plan seed replays the identical event sequence.
func TestCrashTraceExplainsRecovery(t *testing.T) {
	opt := quickOptions(8)
	opt.Kills = []recovery.Kill{{Node: 1, Point: 2}}
	planSeed := PlanSeed(opt.Seed, StrategyNoBlock, 0)
	res, err := RunOne(StrategyNoBlock, opt, planSeed)
	if err != nil {
		t.Fatal(err)
	}
	order := []dsm.TraceKind{dsm.TraceCrash, dsm.TraceDetect, dsm.TraceRestore, dsm.TraceRestart}
	at := make(map[dsm.TraceKind]int)
	for i, ev := range res.Trace {
		if ev.Node != 1 {
			continue
		}
		if _, seen := at[ev.Kind]; !seen {
			at[ev.Kind] = i
		}
	}
	prev := -1
	for _, k := range order {
		i, ok := at[k]
		if !ok {
			t.Fatalf("trace has no %s event for the killed node", k)
		}
		if i < prev {
			t.Errorf("%s at index %d precedes the prior recovery step at %d", k, i, prev)
		}
		prev = i
	}
	if _, ok := at[dsm.TraceCheckpoint]; !ok {
		t.Error("trace has no checkpoint event for the killed node")
	}
	replay, err := RunOne(StrategyNoBlock, opt, planSeed)
	if err != nil {
		t.Fatal(err)
	}
	if diff := diffTraces(res.Trace, replay.Trace); diff != "" {
		t.Fatalf("kill-and-recover replay diverged: %s", diff)
	}
}

// TestCheckpointCrashRoundTrip drives a bare DSM system through a
// checkpoint, a crash and a restore, and asserts the strategy payload
// comes back value-for-value while the flushed shared memory survives the
// re-homing — the round-trip contract every strategy's resume path is
// built on.
func TestCheckpointCrashRoundTrip(t *testing.T) {
	plan := NewPlan(31, 2, PlanConfig{})
	tracer := &dsm.ListTracer{}
	hooks := plan.Hooks(tracer, 0)
	hooks.Crashes = []recovery.Kill{{Node: 1, Point: 1, After: 0.002}}
	cc := cluster.Calibrated2005()
	cc.Hooks = hooks
	sys, err := dsm.NewSystem(2, cc, dsm.Options{CondVars: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Homed at the victim, so recovery must re-home it to node 0.
	r, err := sys.AllocAt(cc.PageSize, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantInts := []int{-7, 0, 1 << 40}
	wantF := 2.718281828
	wantCells := []int32{9, -9, 2147483647}
	var got [1]byte
	err = sys.Run(func(n *dsm.Node) error {
		if n.ID() == 0 {
			if err := n.Barrier(); err != nil {
				return err
			}
			if err := n.Waitcv(0); err != nil {
				return err
			}
			if err := n.ReadAt(r, 5, got[:]); err != nil {
				return err
			}
			return n.Barrier()
		}
		if ck := n.Restored(); ck != nil {
			for i, want := range wantInts {
				if v := ck.Int(); v != want {
					t.Errorf("restored int %d = %d, want %d", i, v, want)
				}
			}
			if v := ck.Float(); v != wantF {
				t.Errorf("restored float = %v, want %v", v, wantF)
			}
			cells := ck.Int32s()
			if len(cells) != len(wantCells) {
				t.Errorf("restored slice length %d, want %d", len(cells), len(wantCells))
			} else {
				for i := range wantCells {
					if cells[i] != wantCells[i] {
						t.Errorf("restored cell %d = %d, want %d", i, cells[i], wantCells[i])
					}
				}
			}
			if err := ck.Err(); err != nil {
				return err
			}
			if err := n.Setcv(0); err != nil {
				return err
			}
			return n.Barrier()
		}
		if err := n.Barrier(); err != nil {
			return err
		}
		if err := n.WriteAt(r, 5, []byte{0xC3}); err != nil {
			return err
		}
		return n.Checkpoint(func(w *recovery.Writer) {
			for _, v := range wantInts {
				w.Int(v)
			}
			w.Float(wantF)
			w.Int32s(wantCells)
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xC3 {
		t.Errorf("shared byte after recovery = %#x, want 0xC3 (write lost across the crash)", got[0])
	}
	st := sys.Node(1).Stats()
	if st.Checkpoints != 1 || st.Crashes != 1 || st.Recoveries != 1 {
		t.Errorf("victim counters ckpt=%d crash=%d recov=%d, want 1/1/1", st.Checkpoints, st.Crashes, st.Recoveries)
	}
	if st.PagesRehomed < 1 {
		t.Errorf("no pages re-homed although the victim homed a page")
	}
	if inc := sys.Node(1).Incarnation(); inc != 1 {
		t.Errorf("incarnation = %d, want 1", inc)
	}
}

// TestLossDupBitExact: with every message class losing and duplicating
// probabilistically, all strategies stay bit-exact; the runs really do
// retry and suppress duplicates.
func TestLossDupBitExact(t *testing.T) {
	opt := quickOptions(17)
	opt.Schedules = 1
	opt.Plan = DefaultPlanConfig()
	for class := range opt.Plan.Loss {
		opt.Plan.Loss[class] = 0.1
		opt.Plan.Dup[class] = 0.1
	}
	opt.UsePlanZero = true // keep this deliberate plan
	rep, err := CheckStrategies(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	res, err := RunOne(StrategyNoBlock, opt, PlanSeed(opt.Seed, StrategyNoBlock, 0))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Retries == 0 {
		t.Error("10% loss injected but no retries recorded")
	}
	if res.Stats.DupsSuppressed == 0 {
		t.Error("10% duplication injected but no duplicates suppressed")
	}
}

// TestPlanLoseDuplicate pins the Plan's loss draws: deterministic across
// plans with equal seeds, capped at MaxLost, and silent at probability
// zero.
func TestPlanLoseDuplicate(t *testing.T) {
	var cfg PlanConfig
	cfg.Loss[cluster.MsgDiff] = 0.9
	cfg.Dup[cluster.MsgDiff] = 0.5
	cfg.MaxLost = 2
	a := NewPlan(5, 2, cfg)
	b := NewPlan(5, 2, cfg)
	sawLoss, sawDup := false, false
	for i := 0; i < 64; i++ {
		la, lb := a.Lose(cluster.MsgDiff, 1), b.Lose(cluster.MsgDiff, 1)
		if la != lb {
			t.Fatalf("draw %d: Lose not deterministic: %d vs %d", i, la, lb)
		}
		if la < 0 || la > 2 {
			t.Fatalf("draw %d: Lose = %d outside [0, MaxLost=2]", i, la)
		}
		if la > 0 {
			sawLoss = true
		}
		da, db := a.Duplicate(cluster.MsgDiff, 1), b.Duplicate(cluster.MsgDiff, 1)
		if da != db {
			t.Fatalf("draw %d: Duplicate not deterministic", i)
		}
		if da {
			sawDup = true
		}
		// Classes with zero probability stay silent.
		if a.Lose(cluster.MsgSync, 1) != 0 || a.Duplicate(cluster.MsgSync, 1) {
			t.Fatal("zero-probability class produced a fault")
		}
	}
	if !sawLoss {
		t.Error("90% loss never fired in 64 draws")
	}
	if !sawDup {
		t.Error("50% duplication never fired in 64 draws")
	}
}
