package chaos

import (
	"sync"
	"testing"

	"genomedsm/internal/cluster"
)

// TestPlanDelayDeterministic pins the replay contract at the plan level:
// two plans from the same seed answer the same delay sequence, and the
// answers a node sees depend only on its own call sequence — not on how
// other nodes' calls interleave.
func TestPlanDelayDeterministic(t *testing.T) {
	cfg := DefaultPlanConfig()
	a := NewPlan(42, 4, cfg)
	b := NewPlan(42, 4, cfg)
	// Warm b's other nodes first: node 2's answers must not shift.
	for i := 0; i < 10; i++ {
		b.Delay(cluster.MsgDiff, 0)
		b.Delay(cluster.MsgPageFetch, 1)
	}
	for i := 0; i < 50; i++ {
		for class := cluster.MsgClass(0); class < cluster.NumMsgClasses; class++ {
			da := a.Delay(class, 2)
			db := b.Delay(class, 2)
			if da != db {
				t.Fatalf("call %d class %v: plan answers diverged: %g vs %g", i, class, da, db)
			}
			if da < 0 {
				t.Fatalf("negative delay %g", da)
			}
			spec := cfg.Delays[class]
			if da < spec.Base || da > spec.Base+spec.Jitter {
				t.Fatalf("delay %g outside [%g, %g]", da, spec.Base, spec.Base+spec.Jitter)
			}
		}
	}
	other := NewPlan(43, 4, cfg)
	same := true
	for i := 0; i < 10; i++ {
		if a.Delay(cluster.MsgDiff, 0) != other.Delay(cluster.MsgDiff, 0) {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical delay sequences")
	}
}

// TestPlanZeroSpecSilent: a class with no configured delay answers 0.
func TestPlanZeroSpecSilent(t *testing.T) {
	p := NewPlan(7, 2, PlanConfig{})
	for i := 0; i < 5; i++ {
		if d := p.Delay(cluster.MsgNotice, 1); d != 0 {
			t.Fatalf("unconfigured class delayed by %g", d)
		}
	}
	if perm := p.Permute(cluster.MsgDiff, 0, 8); perm != nil {
		t.Fatalf("window 0 still permuted: %v", perm)
	}
}

// TestPermuteBounded: every permutation is valid and displaces no element
// further than the reorder window.
func TestPermuteBounded(t *testing.T) {
	for _, window := range []int{1, 2, 3, 7} {
		cfg := PlanConfig{ReorderWindow: window}
		p := NewPlan(11, 3, cfg)
		for _, k := range []int{2, 3, 5, 16, 33} {
			for trial := 0; trial < 20; trial++ {
				perm := p.Permute(cluster.MsgNotice, 1, k)
				if perm == nil {
					continue // identity is always legal
				}
				seen := make([]bool, k)
				for pos, v := range perm {
					if v < 0 || v >= k || seen[v] {
						t.Fatalf("window=%d k=%d: not a permutation: %v", window, k, perm)
					}
					seen[v] = true
					if d := pos - v; d > window || d < -window {
						t.Fatalf("window=%d k=%d: element %d displaced %d positions: %v",
							window, k, v, d, perm)
					}
				}
			}
		}
		if p.Permute(cluster.MsgNotice, 0, 1) != nil {
			t.Error("k=1 should not permute")
		}
	}
}

// TestSchedulePicksInRange: every schedule-control answer is usable as an
// index.
func TestSchedulePicksInRange(t *testing.T) {
	p := NewPlan(5, 4, DefaultPlanConfig())
	for i := 0; i < 100; i++ {
		if g := p.PickLockGrant(i%3, 5); g < 0 || g >= 5 {
			t.Fatalf("lock grant pick %d out of range", g)
		}
		if v := p.PickEvictVictim(i%4, []int{10, 20, 30}); v < 0 || v >= 3 {
			t.Fatalf("evict pick %d out of range", v)
		}
		perm := p.PickBarrierOrder(4)
		if !validOrder(perm, 4) {
			t.Fatalf("barrier order invalid: %v", perm)
		}
	}
	if p.PickLockGrant(0, 1) != 0 || p.PickEvictVictim(0, []int{9}) != 0 {
		t.Error("single-candidate picks must return 0")
	}
	if p.PickBarrierOrder(1) != nil {
		t.Error("k=1 barrier order should be identity")
	}
}

func validOrder(perm []int, k int) bool {
	if perm == nil {
		return true
	}
	if len(perm) != k {
		return false
	}
	seen := make([]bool, k)
	for _, v := range perm {
		if v < 0 || v >= k || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// TestPlanSeedSpread: derived per-run seeds differ across strategies and
// schedules.
func TestPlanSeedSpread(t *testing.T) {
	seen := map[int64]bool{}
	for st := Strategy(0); st < NumStrategies; st++ {
		for sched := 0; sched < 8; sched++ {
			s := PlanSeed(99, st, sched)
			if seen[s] {
				t.Fatalf("duplicate plan seed %d at %v/%d", s, st, sched)
			}
			seen[s] = true
		}
	}
}

// TestTokenGateSerializes: the gate must admit exactly one node at a time.
// The shared counter is unsynchronized on purpose — under -race this test
// doubles as a mutual-exclusion proof.
func TestTokenGateSerializes(t *testing.T) {
	const n, steps = 6, 200
	g := NewTokenGate(n, 1)
	counter := 0
	var wg sync.WaitGroup
	for id := 0; id < n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			g.Register(id)
			defer g.Done(id)
			for i := 0; i < steps; i++ {
				counter++
				g.Yield(id)
			}
		}(id)
	}
	wg.Wait()
	if counter != n*steps {
		t.Fatalf("lost increments: %d != %d", counter, n*steps)
	}
	if g.Picks() == 0 {
		t.Fatal("gate made no scheduling decisions")
	}
}

// TestTokenGateReuse: once every node is done the gate resets, so a
// second SPMD round over the same gate works.
func TestTokenGateReuse(t *testing.T) {
	const n = 3
	g := NewTokenGate(n, 2)
	for round := 0; round < 2; round++ {
		var wg sync.WaitGroup
		for id := 0; id < n; id++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				g.Register(id)
				defer g.Done(id)
				g.Yield(id)
			}(id)
		}
		wg.Wait()
	}
}

// TestTokenGateWakePanics: waking a node that is not parked is a harness
// bug and must fail loudly.
func TestTokenGateWakePanics(t *testing.T) {
	g := NewTokenGate(2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("Wake on a non-parked node did not panic")
		}
	}()
	g.Wake(1)
}

// TestTokenGateParkWake: a parked node resumes only after a running node
// wakes it, and the handoff is race-free.
func TestTokenGateParkWake(t *testing.T) {
	g := NewTokenGate(2, 4)
	ch := make(chan int) // unbuffered, like a grant channel
	got := 0
	// queued mimics protocol state: written while holding the token just
	// before parking, so the granter (which can only run after the park
	// released the token) always observes it — the same enqueue-then-park
	// ordering the DSM lock queue relies on.
	queued := false
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // waiter
		defer wg.Done()
		g.Register(0)
		defer g.Done(0)
		queued = true
		g.Park(0)
		got = <-ch
		g.Unpark(0)
	}()
	go func() { // granter
		defer wg.Done()
		g.Register(1)
		defer g.Done(1)
		for !queued {
			g.Yield(1)
		}
		g.Wake(0)
		ch <- 7
		g.Yield(1)
	}()
	wg.Wait()
	if got != 7 {
		t.Fatalf("grant value %d", got)
	}
}
