package chaos

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
)

// nodeState is one node's position in the gate's scheduling cycle.
type nodeState int

const (
	// stateNone: not registered (or reset between SPMD rounds).
	stateNone nodeState = iota
	// stateReady: runnable, waiting to be handed the token.
	stateReady
	// stateRunning: holds the token.
	stateRunning
	// stateParked: blocked on a protocol channel receive.
	stateParked
	// stateWaking: a running node announced this node's grant is in
	// flight; the node has not yet observed it.
	stateWaking
	// stateDone: the node's SPMD body returned.
	stateDone
)

func (s nodeState) String() string {
	switch s {
	case stateNone:
		return "none"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateParked:
		return "parked"
	case stateWaking:
		return "waking"
	case stateDone:
		return "done"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// TokenGate is a cluster.Gate that serializes the node goroutines of a
// dsm.System behind a single execution token, choosing the next runnable
// node with a seeded PRNG. Because at most one node executes protocol
// code at a time, and because a grant in flight (announced via Wake) is
// always allowed to land before the next pick, the set of candidates at
// every scheduling point is a function of protocol state alone — never of
// the Go scheduler. Two runs from the same seed therefore make identical
// picks and explore the identical interleaving, which is what makes a
// chaos failure replayable.
//
// The gate resets itself when every registered node is Done, so one gate
// can serve a strategy that calls System.Run more than once.
type TokenGate struct {
	mu   sync.Mutex
	cond *sync.Cond
	rng  *rand.Rand

	n          int
	state      []nodeState
	current    int // token holder, or -1
	waking     int // grants announced but not yet landed
	registered int
	done       int
	picks      int64 // scheduling decisions taken, for diagnostics
	stuck      bool  // deadlock already reported
}

// NewTokenGate builds a gate for n nodes making seeded scheduling picks.
func NewTokenGate(n int, seed int64) *TokenGate {
	g := &TokenGate{
		n:       n,
		state:   make([]nodeState, n),
		current: -1,
		rng:     rand.New(rand.NewSource(seed)),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Picks returns the number of scheduling decisions taken so far.
func (g *TokenGate) Picks() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.picks
}

// Register implements cluster.Gate.
func (g *TokenGate) Register(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.state[node] = stateReady
	g.registered++
	g.schedule()
	g.await(node)
}

// Yield implements cluster.Gate.
func (g *TokenGate) Yield(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.state[node] = stateReady
	g.current = -1
	g.schedule()
	g.await(node)
}

// Park implements cluster.Gate. Unlike Yield it returns immediately: the
// caller is about to block on its grant channel instead.
func (g *TokenGate) Park(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.state[node] = stateParked
	g.current = -1
	g.schedule()
}

// Wake implements cluster.Gate. It is called by the token holder before
// it sends a parked node its grant; marking the node Waking keeps the
// scheduler from picking a next node until the grant has landed (the
// woken node calls Unpark), so the ready set never depends on how fast
// the woken goroutine reacts.
func (g *TokenGate) Wake(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state[node] != stateParked {
		// The protocol serializes enqueue-then-park behind the token, so
		// a grant can only target a parked node; anything else is a
		// harness bug worth failing loudly on.
		panic(fmt.Sprintf("chaos: Wake(%d) in state %v", node, g.state[node]))
	}
	g.state[node] = stateWaking
	g.waking++
}

// Unpark implements cluster.Gate: the parked node received its grant and
// wants to run again.
func (g *TokenGate) Unpark(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.state[node] == stateWaking {
		g.waking--
	}
	g.state[node] = stateReady
	g.schedule()
	g.await(node)
}

// Done implements cluster.Gate.
func (g *TokenGate) Done(node int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.state[node] = stateDone
	g.done++
	if g.current == node {
		g.current = -1
	}
	if g.done == g.registered && g.waking == 0 {
		// Round over: reset so the gate can serve another System.Run.
		for i := range g.state {
			g.state[i] = stateNone
		}
		g.registered, g.done, g.current = 0, 0, -1
		return
	}
	g.schedule()
}

// await blocks until node holds the token. Called with g.mu held.
func (g *TokenGate) await(node int) {
	for g.current != node {
		g.cond.Wait()
	}
	g.state[node] = stateRunning
}

// schedule hands the token to a seeded-random ready node when no node
// holds it, every node has registered, and no grant is in flight. Called
// with g.mu held.
func (g *TokenGate) schedule() {
	if g.current != -1 || g.waking > 0 || g.registered < g.n {
		return
	}
	var ready []int
	parked := 0
	for i, s := range g.state {
		switch s {
		case stateReady:
			ready = append(ready, i)
		case stateParked:
			parked++
		}
	}
	if len(ready) == 0 {
		if parked > 0 && g.done < g.registered && !g.stuck {
			// Every live node is parked and nobody is left to grant:
			// genuine protocol deadlock under this schedule.
			g.stuck = true
			panic("chaos: gate deadlock — " + g.dumpLocked())
		}
		return
	}
	g.current = ready[g.rng.Intn(len(ready))]
	g.picks++
	g.cond.Broadcast()
}

// dumpLocked renders the per-node states. Called with g.mu held.
func (g *TokenGate) dumpLocked() string {
	var sb strings.Builder
	for i, s := range g.state {
		if i > 0 {
			sb.WriteString(" ")
		}
		fmt.Fprintf(&sb, "n%d=%v", i, s)
	}
	return sb.String()
}
