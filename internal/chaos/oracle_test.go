package chaos

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"genomedsm/internal/align"
	"genomedsm/internal/dsm"
	"genomedsm/internal/heuristics"
	"genomedsm/internal/preprocess"
)

// quickOptions keeps oracle tests fast while still exercising faults,
// reordering, squeezed caches and the execution gate.
func quickOptions(seed int64) Options {
	return Options{
		Seed: seed, Schedules: 2, Nprocs: 3, SeqLen: 360,
		Timeout: 60 * time.Second,
	}
}

// TestCheckStrategiesBitExact is the differential oracle's core claim:
// every strategy stays bit-exact against its sequential baseline under
// explored schedules with fault injection on.
func TestCheckStrategiesBitExact(t *testing.T) {
	for _, seed := range []int64{1, 77} {
		rep, err := CheckStrategies(quickOptions(seed))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if want := 2 * int(NumStrategies); rep.Runs != want {
			t.Fatalf("seed %d: %d runs, want %d", seed, rep.Runs, want)
		}
	}
}

// TestSeedReplayGolden pins the replay contract end to end: the same
// plan seed reproduces the identical protocol trace, event for event —
// virtual times included — and the identical gate decision count.
func TestSeedReplayGolden(t *testing.T) {
	opt := quickOptions(5)
	for _, st := range []Strategy{StrategyNoBlock, StrategyPhase2, StrategyPreprocess} {
		planSeed := PlanSeed(opt.Seed, st, 0)
		first, err := RunOne(st, opt, planSeed)
		if err != nil {
			t.Fatalf("%v: %v", st, err)
		}
		if len(first.Trace) == 0 {
			t.Fatalf("%v: chaos run produced no protocol trace", st)
		}
		if first.Picks == 0 {
			t.Fatalf("%v: gate made no scheduling decisions", st)
		}
		second, err := RunOne(st, opt, planSeed)
		if err != nil {
			t.Fatalf("%v replay: %v", st, err)
		}
		if diff := diffTraces(first.Trace, second.Trace); diff != "" {
			t.Fatalf("%v: replay diverged from first run: %s", st, diff)
		}
		if first.Picks != second.Picks {
			t.Fatalf("%v: replay made %d gate picks, first run %d", st, second.Picks, first.Picks)
		}
		if first.Stats != second.Stats {
			t.Fatalf("%v: replay stats differ:\n first: %v\nsecond: %v", st, first.Stats, second.Stats)
		}
	}
}

func diffTraces(a, b []dsm.TraceEvent) string {
	if len(a) != len(b) {
		return fmt.Sprintf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Sprintf("event %d: %s vs %s", i, a[i], b[i])
		}
	}
	return ""
}

// TestDifferentSeedsDifferentSchedules: exploration is real — across a
// few seeds the gate must not always land on the same interleaving.
func TestDifferentSeedsDifferentSchedules(t *testing.T) {
	opt := quickOptions(9)
	picks := map[int64]bool{}
	for sched := 0; sched < 3; sched++ {
		res, err := RunOne(StrategyNoBlock, opt, PlanSeed(opt.Seed, StrategyNoBlock, sched))
		if err != nil {
			t.Fatal(err)
		}
		picks[res.Picks] = true
	}
	// Identical pick counts for all three schedules would suggest the
	// seed isn't reaching the scheduler. (Counts can collide by chance;
	// three-way collision on a live scheduler is the signal we test.)
	if len(picks) == 1 {
		t.Log("all schedules took the same number of gate picks; checking traces differ")
		a, _ := RunOne(StrategyNoBlock, opt, PlanSeed(opt.Seed, StrategyNoBlock, 0))
		b, _ := RunOne(StrategyNoBlock, opt, PlanSeed(opt.Seed, StrategyNoBlock, 1))
		if a != nil && b != nil && diffTraces(a.Trace, b.Trace) == "" {
			t.Error("two different plan seeds produced byte-identical traces")
		}
	}
}

// TestWatchdog: a run that cannot finish inside the timeout is reported
// as a hang instead of blocking the oracle forever.
func TestWatchdog(t *testing.T) {
	opt := quickOptions(3)
	opt.Timeout = time.Nanosecond
	_, err := RunOne(StrategyNoBlock, opt, 1)
	if err != ErrHang {
		t.Fatalf("err = %v, want ErrHang", err)
	}
}

// TestParseStrategy round-trips every name and rejects junk.
func TestParseStrategy(t *testing.T) {
	for st := Strategy(0); st < NumStrategies; st++ {
		got, err := ParseStrategy(st.String())
		if err != nil || got != st {
			t.Fatalf("round trip %v: got %v, %v", st, got, err)
		}
	}
	if _, err := ParseStrategy("warpdrive"); err == nil {
		t.Fatal("junk strategy accepted")
	}
	if !strings.Contains(Strategy(99).String(), "99") {
		t.Error("out-of-range String not diagnostic")
	}
}

// TestComparators exercises the divergence detection paths directly.
func TestComparators(t *testing.T) {
	c1 := heuristics.Candidate{SBegin: 1, SEnd: 5, TBegin: 2, TEnd: 6, Score: 30}
	c2 := c1
	c2.Score = 31
	if compareCandidates([]heuristics.Candidate{c1}, []heuristics.Candidate{c1}) != "" {
		t.Error("equal candidates flagged")
	}
	if compareCandidates([]heuristics.Candidate{c1}, []heuristics.Candidate{c2}) == "" {
		t.Error("score mismatch missed")
	}
	if compareCandidates(nil, []heuristics.Candidate{c1}) == "" {
		t.Error("count mismatch missed")
	}

	a1 := &align.Alignment{SBegin: 1, SEnd: 2, TBegin: 1, TEnd: 2, Score: 4,
		Ops: []align.Op{align.OpMatch, align.OpMatch}}
	a2 := &align.Alignment{SBegin: 1, SEnd: 2, TBegin: 1, TEnd: 2, Score: 4,
		Ops: []align.Op{align.OpMatch, align.OpMismatch}}
	if compareAlignments([]*align.Alignment{a1}, []*align.Alignment{a1}) != "" {
		t.Error("equal alignments flagged")
	}
	if compareAlignments([]*align.Alignment{a1}, []*align.Alignment{a2}) == "" {
		t.Error("op mismatch missed")
	}
	if compareAlignments([]*align.Alignment{a1}, []*align.Alignment{nil}) == "" {
		t.Error("nil mismatch missed")
	}
	if compareAlignments(nil, []*align.Alignment{a1}) == "" {
		t.Error("count mismatch missed")
	}

	p1 := &preprocess.Result{TotalHits: 3, BestScore: 9, BestI: 1, BestJ: 2,
		ResultMatrix: [][]int64{{1, 2}}}
	p2 := &preprocess.Result{TotalHits: 3, BestScore: 9, BestI: 1, BestJ: 2,
		ResultMatrix: [][]int64{{1, 3}}}
	p3 := &preprocess.Result{TotalHits: 4, BestScore: 9, BestI: 1, BestJ: 2,
		ResultMatrix: [][]int64{{1, 2}}}
	if comparePreprocess(p1, p1) != "" {
		t.Error("equal preprocess results flagged")
	}
	if comparePreprocess(p2, p1) == "" {
		t.Error("matrix cell mismatch missed")
	}
	if comparePreprocess(p3, p1) == "" {
		t.Error("hit count mismatch missed")
	}
	if comparePreprocess(nil, p1) == "" {
		t.Error("missing result missed")
	}
}

// TestDivergenceError: the failure report names the strategy, schedule
// and plan seed — everything a replay needs — plus the trace tail.
func TestDivergenceError(t *testing.T) {
	d := &Divergence{
		Strategy: StrategyBlocked, Schedule: 3, PlanSeed: 12345,
		Detail: "candidate 0: scores differ",
		Trace:  "[ 0.000001] n0 GETP    page=4\n",
	}
	msg := d.Error()
	for _, want := range []string{"blocked", "schedule=3", "planSeed=12345", "scores differ", "GETP"} {
		if !strings.Contains(msg, want) {
			t.Errorf("divergence report lacks %q:\n%s", want, msg)
		}
	}
	rep := &Report{Divergences: []*Divergence{d}}
	if rep.Err() == nil {
		t.Error("report with divergences returned nil error")
	}
	if (&Report{}).Err() != nil {
		t.Error("clean report returned an error")
	}
}

// TestScheduleExplorationOnly: an explicitly zero plan (no delays, no
// reordering) still explores schedules through the gate and stays
// bit-exact.
func TestScheduleExplorationOnly(t *testing.T) {
	opt := quickOptions(13)
	opt.UsePlanZero = true
	opt.Strategies = []Strategy{StrategyNoBlock, StrategyPhase2}
	rep, err := CheckStrategies(opt)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
}
