// exactpreprocess demonstrates the paper's third strategy end to end:
// the exact Smith–Waterman recurrence runs banded over the simulated
// cluster, the result matrix points at the interesting blocks, selected
// columns are saved to disk, and one interesting block is re-processed to
// retrieve the actual alignment — using the Section 6 reverse method, so
// no full matrix is ever materialized.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"genomedsm"
	"genomedsm/internal/align"
	"genomedsm/internal/preprocess"
	"genomedsm/internal/stats"
)

func main() {
	var (
		n     = flag.Int("n", 8000, "sequence length (base pairs)")
		seed  = flag.Int64("seed", 9, "generator seed")
		procs = flag.Int("procs", 4, "simulated cluster nodes")
		dir   = flag.String("outdir", "", "directory for saved columns (default: temp dir)")
	)
	flag.Parse()

	g := genomedsm.NewGenerator(*seed)
	pair, err := g.HomologousPair(*n, genomedsm.DefaultHomologyModel(*n))
	if err != nil {
		log.Fatal(err)
	}

	outDir := *dir
	if outDir == "" {
		outDir, err = os.MkdirTemp("", "genomedsm-preprocess-")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(outDir)
	}
	sink, err := genomedsm.NewDirSink(outDir)
	if err != nil {
		log.Fatal(err)
	}

	cfg := genomedsm.PreprocessConfig{
		BandScheme:       preprocess.BandBalanced,
		BandSize:         *n / 8,
		ChunkSize:        *n / 8,
		ResultInterleave: *n / 16,
		SaveInterleave:   *n / 8,
		Threshold:        30,
		IOMode:           preprocess.IODeferred,
	}
	res, err := genomedsm.Preprocess(pair.S, pair.T, genomedsm.Options{
		Strategy:   genomedsm.StrategyPreprocess,
		Processors: *procs,
		Preprocess: &cfg,
	}, sink)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("exact pre-process over %d bp on %d nodes\n", *n, *procs)
	fmt.Printf("core time %s, term time %s (simulated); best exact score %d at (%d,%d)\n",
		stats.FormatSeconds(res.CoreTime), stats.FormatSeconds(res.TermTime),
		res.BestScore, res.BestI, res.BestJ)
	fmt.Printf("saved %d column segments + %d border rows (%s bytes) to %s\n",
		res.ColumnsSaved, res.BorderRowsSaved, stats.FormatCount(res.BytesSaved), outDir)

	// The scoreboard: which (band, column-group) blocks deserve a second
	// look?
	blocks := preprocess.InterestingBlocks(res, 1)
	fmt.Printf("\nresult matrix: %d bands × %d groups; %d blocks contain hits\n",
		len(res.ResultMatrix), len(res.ResultMatrix[0]), len(blocks))
	top := blocks
	if len(top) > 5 {
		top = top[:5]
	}
	for _, blk := range top {
		band := res.Bands[blk[0]]
		c0 := blk[1] * cfg.ResultInterleave
		fmt.Printf("  band %d (rows %d..%d) × columns %d..%d: %d hits\n",
			blk[0], band.R0, band.R1, c0, c0+cfg.ResultInterleave-1,
			res.ResultMatrix[blk[0]][blk[1]])
	}

	// Retrieve the actual best alignment without the quadratic matrix:
	// Section 6's reverse method from the recorded best-score position.
	al, st, err := align.ReverseRetrieve(pair.S, pair.T, genomedsm.DefaultScoring(),
		res.BestI, res.BestJ, res.BestScore)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretrieved best alignment via the Section 6 reverse method "+
		"(computed %s cells, %.1f%% of the naive reverse area):\n%s\n",
		stats.FormatCount(st.CellsComputed), 100*st.UsefulFraction(),
		al.RenderReport(pair.S, pair.T, 64))

	// The §5 "later processing" path: re-process the hottest block from
	// the data saved on disk (exact boundary rows + interleaved columns)
	// and retrieve every alignment it contains.
	if len(blocks) > 0 {
		hot := blocks[0]
		for _, blk := range blocks {
			if res.ResultMatrix[blk[0]][blk[1]] > res.ResultMatrix[hot[0]][hot[1]] {
				hot = blk
			}
		}
		als, err := preprocess.RetrieveFromBlock(pair.S, pair.T, genomedsm.DefaultScoring(),
			res, sink, hot[0], hot[1], cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("re-processing hottest block (band %d, group %d) from saved files: %d alignment(s)\n",
			hot[0], hot[1], len(als))
		for i, a := range als {
			if i >= 2 {
				break
			}
			fmt.Printf("  s[%d..%d] ~ t[%d..%d] score %d identity %.0f%%\n",
				a.SBegin, a.SEnd, a.TBegin, a.TEnd, a.Score, 100*a.Identity())
		}
	}
}
