// coherencelab exercises the DSM substrate directly: it runs the same
// producer/consumer workload under the write-invalidate (JIAJIA's) and
// write-update coherence protocols, with and without home migration, and
// prints the protocol trace of the first rounds — a lab bench for the §3
// design-space discussion.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"genomedsm/internal/cluster"
	"genomedsm/internal/dsm"
	"genomedsm/internal/stats"
)

func main() {
	rounds := flag.Int("rounds", 16, "producer/consumer rounds")
	trace := flag.Int("trace", 12, "protocol trace lines to print")
	flag.Parse()

	type variant struct {
		name string
		opts dsm.Options
	}
	variants := []variant{
		{"write-invalidate (JIAJIA)", dsm.Options{}},
		{"write-update", dsm.Options{Protocol: dsm.WriteUpdate}},
		{"write-invalidate + home migration", dsm.Options{HomeMigration: true}},
	}

	tbl := stats.NewTable("coherence lab — producer on node 1, consumer on node 0, page homed at 0",
		"variant", "simulated time", "fetches", "diffs", "patches", "migrations", "bytes")
	var firstTrace string
	for i, v := range variants {
		tracer := dsm.NewRingTracer(256)
		v.opts.Tracer = tracer
		makespan, st, err := run(*rounds, v.opts)
		if err != nil {
			log.Fatalf("%s: %v", v.name, err)
		}
		tbl.AddRowRaw(v.name, stats.FormatSeconds(makespan),
			fmt.Sprintf("%d", st.PageFetches), fmt.Sprintf("%d", st.DiffsSent),
			fmt.Sprintf("%d", st.Updates), fmt.Sprintf("%d", st.Migrations),
			stats.FormatCount(st.BytesMoved))
		if i == 0 {
			lines := strings.Split(strings.TrimRight(tracer.Dump(), "\n"), "\n")
			if len(lines) > *trace {
				lines = lines[:*trace]
			}
			firstTrace = strings.Join(lines, "\n")
		}
	}
	fmt.Print(tbl.Render())
	fmt.Printf("\nprotocol trace of the first rounds (%s):\n%s\n", variants[0].name, firstTrace)
}

// run executes the workload: node 1 produces a value under a lock, node 0
// consumes it, condition variables hand the turn back and forth.
func run(rounds int, opts dsm.Options) (float64, dsm.Stats, error) {
	cfg := cluster.Calibrated2005()
	sys, err := dsm.NewSystem(2, cfg, opts)
	if err != nil {
		return 0, dsm.Stats{}, err
	}
	region, err := sys.AllocAt(cfg.PageSize, 0)
	if err != nil {
		return 0, dsm.Stats{}, err
	}
	err = sys.Run(func(n *dsm.Node) error {
		for e := 0; e < rounds; e++ {
			if n.ID() == 1 {
				if err := n.WithLock(0, func() error {
					return n.WriteAt(region, 64, []byte{byte(e + 1)})
				}); err != nil {
					return err
				}
				if err := n.Setcv(0); err != nil {
					return err
				}
				if err := n.Waitcv(1); err != nil {
					return err
				}
			} else {
				if err := n.Waitcv(0); err != nil {
					return err
				}
				var b [1]byte
				if err := n.WithLock(0, func() error {
					return n.ReadAt(region, 64, b[:])
				}); err != nil {
					return err
				}
				if b[0] != byte(e+1) {
					return fmt.Errorf("round %d read %d", e, b[0])
				}
				if err := n.Setcv(1); err != nil {
					return err
				}
			}
		}
		return n.Barrier()
	})
	if err != nil {
		return 0, dsm.Stats{}, err
	}
	return sys.Makespan(), sys.TotalStats(), nil
}
