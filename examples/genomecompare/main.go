// genomecompare runs the paper's full two-phase pipeline on a pair of
// synthetic genomes: phase 1 finds the similar regions with the blocked
// heuristic strategy on 8 simulated nodes, a Fig.-14-style dot plot shows
// them, and phase 2 retrieves the actual global alignments with scattered
// mapping — printing Fig.-16-style reports and the Fig.-10-style
// execution-time breakdown.
package main

import (
	"flag"
	"fmt"
	"log"

	"genomedsm"
	"genomedsm/internal/cluster"
	"genomedsm/internal/viz"
)

func main() {
	var (
		n     = flag.Int("n", 20000, "genome length (base pairs)")
		seed  = flag.Int64("seed", 12, "generator seed")
		procs = flag.Int("procs", 8, "simulated cluster nodes")
	)
	flag.Parse()

	g := genomedsm.NewGenerator(*seed)
	pair, err := g.HomologousPair(*n, genomedsm.DefaultHomologyModel(*n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("two synthetic genomes of %d bp, %d planted similar regions\n",
		*n, len(pair.Regions))

	h := genomedsm.HeuristicParams{Open: 12, Close: 12, MinScore: 50}
	rep, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
		Strategy:   genomedsm.StrategyHeuristicBlock,
		Processors: *procs,
		Heuristics: &h,
		Phase2:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nphase 1 (%s, %d nodes): %d similar regions in %.2f simulated s\n",
		rep.Strategy, rep.Processors, len(rep.Candidates), rep.Phase1Time)
	plot := &viz.DotPlot{SLen: pair.S.Len(), TLen: pair.T.Len(), Regions: rep.Candidates}
	fmt.Print(plot.ASCII(72, 24))

	fmt.Printf("\nphase 2 (scattered mapping): %d global alignments in %.2f simulated s\n",
		len(rep.Alignments), rep.Phase2Time)
	show := 2
	if len(rep.Alignments) < show {
		show = len(rep.Alignments)
	}
	for i := 0; i < show; i++ {
		fmt.Println(rep.Alignments[i].RenderReport(pair.S, pair.T, 32))
	}

	fmt.Printf("execution-time breakdown: %s\n", cluster.Merge(rep.Breakdowns))
	fmt.Printf("dsm protocol: %s\n", rep.Stats)
}
