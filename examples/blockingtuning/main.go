// blockingtuning sweeps the strategy-2 blocking multiplier on one input
// (the paper's Table 3 experiment) and reports the best configuration —
// the tool you would run before a long production comparison.
package main

import (
	"flag"
	"fmt"
	"log"

	"genomedsm"
	"genomedsm/internal/cluster"
	"genomedsm/internal/stats"
	"genomedsm/internal/wavefront"
)

func main() {
	var (
		n     = flag.Int("n", 5000, "sequence length (base pairs)")
		seed  = flag.Int64("seed", 3, "generator seed")
		procs = flag.Int("procs", 8, "simulated cluster nodes")
		maxM  = flag.Int("max", 5, "largest multiplier to try")
	)
	flag.Parse()

	g := genomedsm.NewGenerator(*seed)
	pair, err := g.HomologousPair(*n, genomedsm.DefaultHomologyModel(*n))
	if err != nil {
		log.Fatal(err)
	}
	h := genomedsm.HeuristicParams{Open: 12, Close: 12, MinScore: 40}
	cc := genomedsm.Calibrated2005()

	tbl := stats.NewTable(
		fmt.Sprintf("blocking sweep: %d bp, %d nodes", *n, *procs),
		"multiplier", "bands×blocks", "simulated time", "gain vs 1×1")
	var base, best float64
	bestLabel := ""
	for a := 1; a <= *maxM; a++ {
		for b := 1; b <= *maxM; b++ {
			bc := genomedsm.MultiplierConfig(a, b, *procs)
			if err := (wavefront.BlockConfig(bc)).Validate(pair.S.Len(), pair.T.Len()); err != nil {
				continue
			}
			res, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
				Strategy:   genomedsm.StrategyHeuristicBlock,
				Processors: *procs,
				Heuristics: &h,
				Blocking:   &bc,
				Cluster:    &cc,
			})
			if err != nil {
				log.Fatal(err)
			}
			label := fmt.Sprintf("%d×%d", a, b)
			if a == 1 && b == 1 {
				base = res.Phase1Time
			}
			if best == 0 || res.Phase1Time < best {
				best, bestLabel = res.Phase1Time, label
			}
			gain := "-"
			if base > 0 {
				gain = fmt.Sprintf("%.0f%%", 100*(base-res.Phase1Time)/res.Phase1Time)
			}
			tbl.AddRowRaw(label, fmt.Sprintf("%d×%d", bc.Bands, bc.Blocks),
				stats.FormatSeconds(res.Phase1Time), gain)
		}
	}
	fmt.Print(tbl.Render())
	fmt.Printf("\nbest multiplier: %s (%.3f simulated s; speedup over 1×1: %.2fx)\n",
		bestLabel, best, cluster.Speedup(base, best))
}
