// Quickstart: compare two short DNA sequences, print the best local
// alignment (exact, Section 6 linear-space method) and the global
// alignment of the paper's Fig. 1 example.
package main

import (
	"fmt"
	"log"

	"genomedsm"
)

func main() {
	sc := genomedsm.DefaultScoring()

	// The paper's Fig. 1 pair.
	s, err := genomedsm.NewSequence("GACGGATTAG")
	if err != nil {
		log.Fatal(err)
	}
	t, err := genomedsm.NewSequence("GATCGGAATAG")
	if err != nil {
		log.Fatal(err)
	}
	global, err := genomedsm.GlobalAlignment(s, t, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("global alignment (Fig. 1), score %d:\n%s\n", global.Score, global.Render(s, t))

	// A synthetic pair with one planted similar region; find it exactly.
	g := genomedsm.NewGenerator(1)
	pair, err := g.HomologousPair(2000, genomedsm.HomologyModel{
		Regions: 1, RegionLen: 120, RegionJit: 0,
		Divergence: genomedsm.MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		log.Fatal(err)
	}
	local, err := genomedsm.BestLocalAlignment(pair.S, pair.T, sc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best local alignment: s[%d..%d] ~ t[%d..%d], score %d, identity %.0f%%\n",
		local.SBegin, local.SEnd, local.TBegin, local.TEnd, local.Score, 100*local.Identity())

	// The same pair through the paper's parallel pipeline on 4 simulated
	// cluster nodes.
	rep, err := genomedsm.Compare(pair.S, pair.T, genomedsm.Options{
		Strategy:   genomedsm.StrategyHeuristicBlock,
		Processors: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("parallel heuristic scan found %d candidate region(s) in %.3f simulated seconds\n",
		len(rep.Candidates), rep.Phase1Time)
	for _, cand := range rep.Candidates {
		fmt.Printf("  s[%d..%d] ~ t[%d..%d] score %d\n",
			cand.SBegin, cand.SEnd, cand.TBegin, cand.TEnd, cand.Score)
	}
}
