package genomedsm

import (
	"testing"
)

func testInput(t *testing.T) (Sequence, Sequence) {
	t.Helper()
	g := NewGenerator(501)
	pair, err := g.HomologousPair(1200, HomologyModel{
		Regions: 5, RegionLen: 150, RegionJit: 50,
		Divergence: MutationModel{SubstitutionRate: 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pair.S, pair.T
}

func TestCompareHeuristicStrategies(t *testing.T) {
	s, tt := testInput(t)
	h := HeuristicParams{Open: 12, Close: 12, MinScore: 40}
	rep1, err := Compare(s, tt, Options{Strategy: StrategyHeuristic, Processors: 4, Heuristics: &h})
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := Compare(s, tt, Options{Strategy: StrategyHeuristicBlock, Processors: 4, Heuristics: &h})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep1.Candidates) == 0 {
		t.Fatal("strategy 1 found no candidates")
	}
	if len(rep1.Candidates) != len(rep2.Candidates) {
		t.Errorf("strategies disagree: %d vs %d candidates", len(rep1.Candidates), len(rep2.Candidates))
	}
	for i := range rep1.Candidates {
		if rep1.Candidates[i] != rep2.Candidates[i] {
			t.Errorf("candidate %d differs between strategies", i)
		}
	}
	if rep2.Phase1Time >= rep1.Phase1Time {
		t.Errorf("blocked (%.3fs) not faster than per-cell handoff (%.3fs)", rep2.Phase1Time, rep1.Phase1Time)
	}
	if rep1.Stats.MsgsSent == 0 || len(rep1.Breakdowns) != 4 {
		t.Error("report missing protocol stats or breakdowns")
	}
}

func TestComparePhase2(t *testing.T) {
	s, tt := testInput(t)
	h := HeuristicParams{Open: 12, Close: 12, MinScore: 40}
	rep, err := Compare(s, tt, Options{
		Strategy: StrategyHeuristicBlock, Processors: 2, Heuristics: &h, Phase2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Alignments) != len(rep.Candidates) {
		t.Fatalf("%d alignments for %d candidates", len(rep.Alignments), len(rep.Candidates))
	}
	sc := DefaultScoring()
	for i, al := range rep.Alignments {
		if al == nil {
			t.Fatalf("alignment %d missing", i)
		}
		if err := al.Validate(s, tt, sc); err != nil {
			t.Errorf("alignment %d: %v", i, err)
		}
	}
	if rep.Phase2Time <= 0 {
		t.Error("phase-2 time not recorded")
	}
}

func TestComparePreprocess(t *testing.T) {
	s, tt := testInput(t)
	pc := PreprocessConfig{
		BandScheme: 0, BandSize: 200, ChunkSize: 200,
		ResultInterleave: 200, Threshold: 20,
	}
	rep, err := Compare(s, tt, Options{Strategy: StrategyPreprocess, Processors: 4, Preprocess: &pc})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preprocess == nil || rep.Preprocess.TotalHits == 0 {
		t.Fatal("pre-process produced no scoreboard")
	}
	if rep.Preprocess.BestScore < 40 {
		t.Errorf("best exact score %d looks too low", rep.Preprocess.BestScore)
	}
}

func TestCompareDefaultsWork(t *testing.T) {
	s, tt := testInput(t)
	rep, err := Compare(s, tt, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Processors != 1 || rep.Strategy != StrategyHeuristic {
		t.Errorf("defaults: %+v", rep)
	}
}

func TestCompareRejectsBadOptions(t *testing.T) {
	s, tt := testInput(t)
	if _, err := Compare(s, tt, Options{Processors: -2}); err == nil {
		t.Error("negative processors accepted")
	}
	if _, err := Compare(s, tt, Options{Strategy: Strategy(99), Processors: 1}); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestBestLocalAndGlobalAlignment(t *testing.T) {
	s := mustSeq(t, "GACGGATTAG")
	tt := mustSeq(t, "GATCGGAATAG")
	g, err := GlobalAlignment(s, tt, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if g.Score != 6 {
		t.Errorf("Fig. 1 global score %d, want 6", g.Score)
	}
	l, err := BestLocalAlignment(s, tt, DefaultScoring())
	if err != nil {
		t.Fatal(err)
	}
	if l.Score < 6 {
		t.Errorf("local score %d < global 6", l.Score)
	}
}

func TestStrategyString(t *testing.T) {
	if StrategyHeuristic.String() != "heuristic" ||
		StrategyHeuristicBlock.String() != "heuristic-block" ||
		StrategyPreprocess.String() != "pre-process" {
		t.Error("strategy names wrong")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy name empty")
	}
}

func TestComparePhase2LinearSpace(t *testing.T) {
	s, tt := testInput(t)
	h := HeuristicParams{Open: 12, Close: 12, MinScore: 40}
	full, err := Compare(s, tt, Options{
		Strategy: StrategyHeuristicBlock, Processors: 2, Heuristics: &h, Phase2: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	lin, err := Compare(s, tt, Options{
		Strategy: StrategyHeuristicBlock, Processors: 2, Heuristics: &h,
		Phase2: true, Phase2LinearSpace: 1, // force Hirschberg everywhere
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Alignments) != len(lin.Alignments) {
		t.Fatalf("alignment counts differ: %d vs %d", len(full.Alignments), len(lin.Alignments))
	}
	for i := range full.Alignments {
		if full.Alignments[i].Score != lin.Alignments[i].Score {
			t.Errorf("alignment %d: scores %d vs %d", i, full.Alignments[i].Score, lin.Alignments[i].Score)
		}
	}
	if lin.Phase2Time <= full.Phase2Time {
		t.Errorf("hirschberg phase 2 (%.4fs) should cost more time than full matrix (%.4fs)",
			lin.Phase2Time, full.Phase2Time)
	}
}

func TestBestLocalAffine(t *testing.T) {
	s := mustSeq(t, "ACGTACGTACGT")
	al, err := BestLocalAffine(s, s, AffineScoring{Match: 2, Mismatch: -1, GapOpen: -3, GapExtend: -1})
	if err != nil {
		t.Fatal(err)
	}
	if al.Score != 24 {
		t.Errorf("affine self score %d, want 24", al.Score)
	}
}

func mustSeq(t *testing.T, s string) Sequence {
	t.Helper()
	seq, err := NewSequence(s)
	if err != nil {
		t.Fatal(err)
	}
	return seq
}
